//! Deterministic, seed-reproducible fault injection for the memory layer.
//!
//! The paper's claim is robustness: the Smache controller streams correctly
//! under *any* stall/valid schedule on its interfaces. This module provides
//! the adversary that proves it. A [`FaultPlan`] — a seed plus a
//! [`ChaosProfile`] — drives wrapper components that perturb the memory
//! substrate in two distinct classes:
//!
//! * **Latency-only faults** (DRAM response jitter, stall storms, FIFO
//!   slow-drain, valid bubbles) reshape *when* data moves, never *what*
//!   moves. The ready/valid handshakes and skid buffering of the design
//!   must absorb them: the output stays bit-exact versus the golden model.
//! * **Data-corruption faults** (single-bit flips, dropped or duplicated
//!   beats) change the data itself. These must never pass silently — the
//!   wrappers carry parity-style side information so the consuming system
//!   can surface a typed diagnostic at the exact cycle of delivery.
//!
//! ## Reproducibility contract
//!
//! Every random decision is drawn from a per-component [`ChaosRng`] stream
//! derived as `splitmix64(seed ^ fnv1a(component_name))`, and each stream is
//! advanced exactly once per clock cycle (or per response) by its owner.
//! Two runs with the same plan, input and configuration therefore inject
//! the *identical* fault schedule — independent of scheduler mode, thread
//! count, or host. See `docs/RESILIENCE.md`.

use std::collections::VecDeque;
use std::fmt;

use smache_sim::hash::splitmix64;
use smache_sim::telemetry::{ProbeKind, ProbeRegistry, Probed};
use smache_sim::{SimResult, Word};

use crate::dram::{Dram, DramConfig, DramStats, DramTick};

/// Cap on the per-component fault-event log; counters stay exact beyond it.
const MAX_EVENTS: usize = 1024;

/// The taxonomy of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Extra cycles added to a DRAM read response (latency-only).
    LatencyJitter,
    /// A multi-cycle burst of deasserted `ready` on a stream interface
    /// (latency-only).
    StallStorm,
    /// A cycle on which a FIFO's read side refused to drain (latency-only).
    SlowDrain,
    /// A single bit inverted in a data word (corruption; must be detected).
    BitFlip,
    /// A stream beat that was removed from the sequence (corruption).
    DroppedBeat,
    /// A stream beat that was delivered twice (corruption).
    DuplicatedBeat,
}

impl FaultKind {
    /// The stable textual label (also the `Display` form).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LatencyJitter => "latency-jitter",
            FaultKind::StallStorm => "stall-storm",
            FaultKind::SlowDrain => "slow-drain",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::DroppedBeat => "dropped-beat",
            FaultKind::DuplicatedBeat => "duplicated-beat",
        }
    }

    /// Parses the stable textual label back into the kind.
    pub fn from_label(s: &str) -> Option<FaultKind> {
        Some(match s {
            "latency-jitter" => FaultKind::LatencyJitter,
            "stall-storm" => FaultKind::StallStorm,
            "slow-drain" => FaultKind::SlowDrain,
            "bit-flip" => FaultKind::BitFlip,
            "dropped-beat" => FaultKind::DroppedBeat,
            "duplicated-beat" => FaultKind::DuplicatedBeat,
            _ => return None,
        })
    }

    /// True for fault kinds that only reshape timing and must be absorbed.
    pub fn is_latency_only(&self) -> bool {
        matches!(
            self,
            FaultKind::LatencyJitter | FaultKind::StallStorm | FaultKind::SlowDrain
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One injected fault, with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Local clock cycle of the component at injection/delivery time.
    pub cycle: u64,
    /// The component that injected or detected the fault.
    pub component: &'static str,
    /// What happened.
    pub kind: FaultKind,
    /// Kind-specific detail: added cycles for jitter, burst length for a
    /// storm, flipped bit position for a bit flip, beat index for
    /// drop/duplicate.
    pub detail: u64,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:>6}  {:<14} {} (detail {})",
            self.cycle, self.component, self.kind, self.detail
        )
    }
}

/// Per-fault counters accumulated by the chaos wrappers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// DRAM read responses that received extra latency.
    pub jitter_events: u64,
    /// Total extra cycles added by jitter.
    pub jitter_cycles_added: u64,
    /// Stall storms started.
    pub stall_storms: u64,
    /// Cycles spent inside a stall storm.
    pub storm_cycles: u64,
    /// Cycles a FIFO's read side was throttled while data waited.
    pub slow_drain_cycles: u64,
    /// Single-bit flips injected into data words.
    pub bit_flips_injected: u64,
    /// Bit flips caught by the parity-style check at delivery.
    pub bit_flips_detected: u64,
    /// Stream beats removed from a sequence.
    pub beats_dropped: u64,
    /// Stream beats delivered more than once.
    pub beats_duplicated: u64,
}

impl FaultCounters {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.jitter_events += other.jitter_events;
        self.jitter_cycles_added += other.jitter_cycles_added;
        self.stall_storms += other.stall_storms;
        self.storm_cycles += other.storm_cycles;
        self.slow_drain_cycles += other.slow_drain_cycles;
        self.bit_flips_injected += other.bit_flips_injected;
        self.bit_flips_detected += other.bit_flips_detected;
        self.beats_dropped += other.beats_dropped;
        self.beats_duplicated += other.beats_duplicated;
    }

    /// True when any fault of any class was injected.
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }

    /// Data-corruption faults injected (flips + drops + duplicates).
    pub fn data_faults_injected(&self) -> u64 {
        self.bit_flips_injected + self.beats_dropped + self.beats_duplicated
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jitter {}x (+{} cyc), storms {}x ({} cyc), slow-drain {} cyc, \
             flips {}/{} detected, beats -{}/+{}",
            self.jitter_events,
            self.jitter_cycles_added,
            self.stall_storms,
            self.storm_cycles,
            self.slow_drain_cycles,
            self.bit_flips_detected,
            self.bit_flips_injected,
            self.beats_dropped,
            self.beats_duplicated
        )
    }
}

/// Fault intensities; combined with a seed this forms a [`FaultPlan`].
///
/// Probabilities are per-opportunity (per response for jitter, per cycle
/// for storms and slow-drain). The `Option<u64>` data faults target the
/// k-th opportunity (k-th DRAM read response, k-th stream beat) exactly
/// once, which makes every corruption plan individually checkable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosProfile {
    /// Probability that a DRAM read response receives extra latency.
    pub read_jitter_prob: f64,
    /// Maximum extra cycles per jittered response (uniform in `1..=max`).
    pub read_jitter_max: u64,
    /// Per-cycle probability that a stall storm starts.
    pub stall_storm_prob: f64,
    /// Maximum storm length in cycles (uniform in `1..=max`).
    pub stall_storm_max: u64,
    /// Per-cycle probability that a FIFO's read side refuses to drain.
    pub slow_drain_prob: f64,
    /// Flip one bit in the k-th DRAM read response (0-based), if set.
    pub bit_flip_read: Option<u64>,
    /// Drop the k-th stream beat (0-based), if set (AXI fuzz source only).
    pub drop_beat: Option<u64>,
    /// Duplicate the k-th stream beat (0-based), if set (AXI fuzz source
    /// only).
    pub dup_beat: Option<u64>,
}

impl ChaosProfile {
    /// No faults at all (the default).
    pub fn none() -> Self {
        ChaosProfile {
            read_jitter_prob: 0.0,
            read_jitter_max: 0,
            stall_storm_prob: 0.0,
            stall_storm_max: 0,
            slow_drain_prob: 0.0,
            bit_flip_read: None,
            drop_beat: None,
            dup_beat: None,
        }
    }

    /// DRAM latency jitter only.
    pub fn jitter() -> Self {
        ChaosProfile {
            read_jitter_prob: 0.2,
            read_jitter_max: 6,
            ..Self::none()
        }
    }

    /// Stall storms on the datapath only.
    pub fn storms() -> Self {
        ChaosProfile {
            stall_storm_prob: 0.02,
            stall_storm_max: 12,
            ..Self::none()
        }
    }

    /// FIFO slow-drain only.
    pub fn drain() -> Self {
        ChaosProfile {
            slow_drain_prob: 0.15,
            ..Self::none()
        }
    }

    /// Everything latency-only at once: jitter + storms + slow-drain.
    pub fn heavy() -> Self {
        ChaosProfile {
            read_jitter_prob: 0.2,
            read_jitter_max: 6,
            stall_storm_prob: 0.02,
            stall_storm_max: 12,
            slow_drain_prob: 0.15,
            bit_flip_read: None,
            drop_beat: None,
            dup_beat: None,
        }
    }

    /// A single-bit flip in the k-th DRAM read response (corrupting).
    pub fn flip(k: u64) -> Self {
        ChaosProfile {
            bit_flip_read: Some(k),
            ..Self::none()
        }
    }

    /// Parses a profile name as accepted by the CLI/bench `--chaos-profile`
    /// flag: `off`, `jitter`, `storms`, `drain`, `heavy`, `flip:<k>`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" | "none" => Some(Self::none()),
            "jitter" => Some(Self::jitter()),
            "storms" => Some(Self::storms()),
            "drain" => Some(Self::drain()),
            "heavy" => Some(Self::heavy()),
            _ => {
                let k = name.strip_prefix("flip:")?;
                k.parse::<u64>().ok().map(Self::flip)
            }
        }
    }

    /// True when the profile can inject at least one fault.
    pub fn is_active(&self) -> bool {
        self.read_jitter_prob > 0.0
            || self.stall_storm_prob > 0.0
            || self.slow_drain_prob > 0.0
            || self.bit_flip_read.is_some()
            || self.drop_beat.is_some()
            || self.dup_beat.is_some()
    }

    /// True when every enabled fault is latency-only (absorbable).
    pub fn is_latency_only(&self) -> bool {
        self.bit_flip_read.is_none() && self.drop_beat.is_none() && self.dup_beat.is_none()
    }
}

impl Default for ChaosProfile {
    fn default() -> Self {
        Self::none()
    }
}

/// A complete, reproducible fault schedule: a seed plus a profile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Master seed; every component derives an independent stream from it.
    pub seed: u64,
    /// Fault intensities.
    pub profile: ChaosProfile,
}

impl FaultPlan {
    /// Creates a plan.
    pub fn new(seed: u64, profile: ChaosProfile) -> Self {
        FaultPlan { seed, profile }
    }

    /// True when the plan can inject at least one fault.
    pub fn is_active(&self) -> bool {
        self.profile.is_active()
    }

    /// True when an *active* plan is still a pure function of
    /// (seed, cycle) — i.e. every enabled fault is latency-only. Such a
    /// plan's control-plane perturbations are deterministic per chaos
    /// seed, so a control schedule captured under it can be replayed
    /// across data seeds. Corrupting plans (bit flips, dropped or
    /// duplicated beats) are never replayable: the fault's *effect*
    /// depends on the data words it lands on.
    pub fn is_replayable(&self) -> bool {
        self.profile.is_latency_only()
    }

    /// Derives the deterministic per-component random stream.
    ///
    /// The `seed ^ fnv1a(name)` rule is the shared
    /// [`smache_sim::hash::stream_seed`] helper, so every seeded subsystem
    /// (chaos here, the serve-layer result cache, future samplers) derives
    /// keys the same pinned way.
    pub fn stream(&self, component: &str) -> ChaosRng {
        ChaosRng::new(smache_sim::hash::stream_seed(self.seed, component))
    }
}

/// A small, dependency-free xorshift64* PRNG for fault decisions.
///
/// Not cryptographic — it only needs to be deterministic, well-mixed, and
/// identical on every platform.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Seeds the generator (any seed is valid, including 0).
    pub fn new(seed: u64) -> Self {
        // splitmix64 never maps to 0 for distinct inputs except one; guard
        // anyway because xorshift has a fixed point at 0.
        let s = splitmix64(seed);
        ChaosRng {
            state: if s == 0 { 0x9e37_79b9 } else { s },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut s = self.state;
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        self.state = s;
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still burn a draw so enabling a zero-probability fault does
            // not shift the schedule of the other faults on this stream.
            let _ = self.next_u64();
            return false;
        }
        if p >= 1.0 {
            let _ = self.next_u64();
            return true;
        }
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Uniform value in `lo..=hi` (requires `lo <= hi`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        lo + self.next_u64() % span
    }
}

/// Generates seeded multi-cycle stall bursts ("storms") on an interface.
///
/// Call [`StormGen::stalled`] exactly once per clock cycle; it returns
/// whether the interface is inside a storm that cycle. One random draw is
/// consumed per *non-storm* cycle, so the schedule depends only on the
/// cycle count — identical across scheduler modes.
#[derive(Debug, Clone)]
pub struct StormGen {
    rng: ChaosRng,
    plan: FaultPlan,
    component: &'static str,
    remaining: u64,
    counters: FaultCounters,
    events: Vec<FaultEvent>,
}

impl StormGen {
    /// Creates a storm generator for `component` under `plan`.
    pub fn new(plan: FaultPlan, component: &'static str) -> Self {
        StormGen {
            rng: plan.stream(component),
            plan,
            component,
            remaining: 0,
            counters: FaultCounters::default(),
            events: Vec::new(),
        }
    }

    /// Advances one cycle; true while inside a stall storm.
    pub fn stalled(&mut self, cycle: u64) -> bool {
        if self.remaining > 0 {
            self.remaining -= 1;
            self.counters.storm_cycles += 1;
            return true;
        }
        let p = self.plan.profile;
        if p.stall_storm_prob > 0.0 && self.rng.chance(p.stall_storm_prob) {
            let len = self.rng.range(1, p.stall_storm_max.max(1));
            self.remaining = len - 1;
            self.counters.stall_storms += 1;
            self.counters.storm_cycles += 1;
            if self.events.len() < MAX_EVENTS {
                self.events.push(FaultEvent {
                    cycle,
                    component: self.component,
                    kind: FaultKind::StallStorm,
                    detail: len,
                });
            }
            return true;
        }
        false
    }

    /// Accumulated counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Drains the recorded storm-start events.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Restores the generator to its post-construction state (same seed),
    /// so consecutive runs see the identical storm schedule.
    pub fn reset_chaos(&mut self) {
        self.rng = self.plan.stream(self.component);
        self.remaining = 0;
        self.counters = FaultCounters::default();
        self.events.clear();
    }
}

/// Component name used by [`FaultyDram`] in events and diagnostics.
pub const DRAM_COMPONENT: &str = "mem.dram";

/// A [`Dram`] wrapper that injects response-latency jitter and single-bit
/// data flips according to a [`FaultPlan`].
///
/// With an inactive plan the wrapper is a bit- and cycle-exact passthrough.
/// With an active plan, every narrow read response is routed through an
/// in-order release queue: jitter delays the release (later responses
/// cannot overtake a delayed earlier one — an in-order AXI read channel),
/// and the configured bit flip inverts one random bit of the k-th response.
/// Flipped words carry parity-style side information; the flip is reported
/// via [`FaultyDram::take_fault`] on the delivery cycle so the consuming
/// system can fail loudly instead of computing garbage.
pub struct FaultyDram {
    inner: Dram,
    plan: FaultPlan,
    rng: ChaosRng,
    /// In-order delayed responses: (release_cycle, addr, word, flipped bit).
    delayed: VecDeque<(u64, usize, Word, Option<u32>)>,
    reads_delivered: u64,
    pending_fault: Option<FaultEvent>,
    counters: FaultCounters,
    events: Vec<FaultEvent>,
    cycle: u64,
}

impl FaultyDram {
    /// Creates a DRAM of `words` zeroed words under `plan`.
    pub fn new(words: usize, config: DramConfig, plan: FaultPlan) -> SimResult<Self> {
        Ok(FaultyDram {
            inner: Dram::new(words, config)?,
            plan,
            rng: plan.stream(DRAM_COMPONENT),
            delayed: VecDeque::new(),
            reads_delivered: 0,
            pending_fault: None,
            counters: FaultCounters::default(),
            events: Vec::new(),
            cycle: 0,
        })
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        self.inner.config()
    }

    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when sized zero (never: the constructor rejects it).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Accumulated traffic statistics (of the wrapped device).
    pub fn stats(&self) -> &DramStats {
        self.inner.stats()
    }

    /// The row currently open in `bank`'s row buffer (see
    /// [`Dram::open_row`]).
    pub fn open_row(&self, bank: usize) -> Option<usize> {
        self.inner.open_row(bank)
    }

    /// Number of read responses held back in the in-order chaos release
    /// queue (0 when the fault plan adds no latency).
    pub fn inflight(&self) -> usize {
        self.delayed.len()
    }

    /// Resets the traffic statistics.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    /// Accumulated fault counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Drains the recorded fault events.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Takes the fault detected on the current cycle, if any. The consuming
    /// system should surface it as a typed error: a taken fault means a
    /// corrupted word was just delivered.
    pub fn take_fault(&mut self) -> Option<FaultEvent> {
        self.pending_fault.take()
    }

    /// Restores the chaos state (RNG, queues, counters, local clock) to its
    /// post-construction value so consecutive runs replay the identical
    /// fault schedule. Does not touch memory contents or traffic stats.
    pub fn reset_chaos(&mut self) {
        self.rng = self.plan.stream(DRAM_COMPONENT);
        self.delayed.clear();
        self.reads_delivered = 0;
        self.pending_fault = None;
        self.counters = FaultCounters::default();
        self.events.clear();
        self.cycle = 0;
        // Cold timing state, or the fault schedule (and even the fault-free
        // cycle count) would depend on what ran before on this device.
        self.inner.precharge_all();
    }

    /// Loads initial contents starting at `base`.
    pub fn preload(&mut self, base: usize, words: &[Word]) -> SimResult<()> {
        self.inner.preload(base, words)
    }

    /// Copies out `len` words starting at `base`.
    pub fn dump(&self, base: usize, len: usize) -> SimResult<Vec<Word>> {
        self.inner.dump(base, len)
    }

    /// True when a staged read command will be accepted at tick.
    pub fn read_path_free(&self) -> bool {
        self.inner.read_path_free()
    }

    /// True when a staged write command will be accepted at tick.
    pub fn write_path_free(&self) -> bool {
        self.inner.write_path_free()
    }

    /// Holds a read request (see [`Dram::hold_read`]).
    pub fn hold_read(&mut self, addr: usize) -> SimResult<()> {
        self.inner.hold_read(addr)
    }

    /// Withdraws a held read request.
    pub fn cancel_read(&mut self) {
        self.inner.cancel_read();
    }

    /// Holds a write request (see [`Dram::hold_write`]).
    pub fn hold_write(&mut self, addr: usize, data: Word) -> SimResult<()> {
        self.inner.hold_write(addr, data)
    }

    /// Withdraws a held write request.
    pub fn cancel_write(&mut self) {
        self.inner.cancel_write();
    }

    /// Local clock (ticks since construction or [`FaultyDram::reset_chaos`]).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn push_event(&mut self, kind: FaultKind, detail: u64) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(FaultEvent {
                cycle: self.cycle,
                component: DRAM_COMPONENT,
                kind,
                detail,
            });
        }
    }

    /// Advances one cycle (see [`Dram::tick`]), applying the fault plan to
    /// the read-response path.
    pub fn tick(&mut self) -> DramTick {
        let mut report = self.inner.tick();
        if self.plan.is_active() {
            // Intercept the device response into the in-order release queue.
            if let Some((addr, word)) = report.response.take() {
                let idx = self.reads_delivered;
                self.reads_delivered += 1;
                let mut word = word;
                let mut flipped = None;
                if self.plan.profile.bit_flip_read == Some(idx) {
                    let bit = (self.rng.next_u64() % 32) as u32;
                    word ^= 1 << bit;
                    flipped = Some(bit);
                    self.counters.bit_flips_injected += 1;
                    self.push_event(FaultKind::BitFlip, bit as u64);
                }
                let p = self.plan.profile;
                let mut release = self.cycle;
                if p.read_jitter_prob > 0.0 && self.rng.chance(p.read_jitter_prob) {
                    let d = self.rng.range(1, p.read_jitter_max.max(1));
                    release += d;
                    self.counters.jitter_events += 1;
                    self.counters.jitter_cycles_added += d;
                    self.push_event(FaultKind::LatencyJitter, d);
                }
                // In-order channel: never overtake a delayed predecessor.
                if let Some(&(prev, ..)) = self.delayed.back() {
                    release = release.max(prev);
                }
                self.delayed.push_back((release, addr, word, flipped));
            }
            // Deliver at most one due response from the front of the queue.
            if let Some(&(due, addr, word, flipped)) = self.delayed.front() {
                if due <= self.cycle {
                    self.delayed.pop_front();
                    report.response = Some((addr, word));
                    if let Some(bit) = flipped {
                        self.counters.bit_flips_detected += 1;
                        self.pending_fault = Some(FaultEvent {
                            cycle: self.cycle,
                            component: DRAM_COMPONENT,
                            kind: FaultKind::BitFlip,
                            detail: bit as u64,
                        });
                    }
                }
            }
        }
        self.cycle += 1;
        report
    }
}

/// Component name used by [`FaultyFifo`] in events and diagnostics.
pub const FIFO_COMPONENT: &str = "mem.resp_fifo";

/// A response skid FIFO whose read side can be throttled ("slow-drain").
///
/// Models the first-word-fall-through skid buffer between the DRAM read
/// channel and the stream shift: pushes land immediately, pops observe the
/// per-cycle drain decision made by [`FaultyFifo::begin_cycle`]. A blocked
/// cycle looks exactly like DRAM latency to the consumer, so a correct
/// controller absorbs it. With an inactive plan the FIFO never blocks.
pub struct FaultyFifo {
    plan: FaultPlan,
    rng: ChaosRng,
    inner: VecDeque<Word>,
    drain_blocked: bool,
    counters: FaultCounters,
}

impl FaultyFifo {
    /// Creates an empty FIFO under `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyFifo {
            plan,
            rng: plan.stream(FIFO_COMPONENT),
            inner: VecDeque::new(),
            drain_blocked: false,
            counters: FaultCounters::default(),
        }
    }

    /// Decides this cycle's drain fate. Call exactly once per clock cycle,
    /// before any pops.
    pub fn begin_cycle(&mut self) {
        let p = self.plan.profile.slow_drain_prob;
        if p > 0.0 {
            self.drain_blocked = self.rng.chance(p);
            if self.drain_blocked && !self.inner.is_empty() {
                self.counters.slow_drain_cycles += 1;
            }
        } else {
            self.drain_blocked = false;
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends a word (writes are never throttled).
    pub fn push_back(&mut self, word: Word) {
        self.inner.push_back(word);
    }

    /// Pops the oldest word, unless empty or this cycle's drain is blocked.
    pub fn pop_front(&mut self) -> Option<Word> {
        if self.drain_blocked {
            None
        } else {
            self.inner.pop_front()
        }
    }

    /// Discards all contents (run reset); chaos state is untouched — use
    /// [`FaultyFifo::reset_chaos`] for schedule reproducibility.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Accumulated fault counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Restores the chaos state (RNG, counters, drain flag) to its
    /// post-construction value.
    pub fn reset_chaos(&mut self) {
        self.rng = self.plan.stream(FIFO_COMPONENT);
        self.drain_blocked = false;
        self.counters = FaultCounters::default();
    }
}

impl Probed for FaultyDram {
    fn register_probes(&self, reg: &mut ProbeRegistry) {
        reg.register("dram.inflight", ProbeKind::Vector(16));
        for bank in 0..self.config().num_banks {
            reg.register(&format!("dram.row_open.{bank}"), ProbeKind::Vector(32));
        }
    }

    fn sample_probes(&self, cycle: u64, reg: &mut ProbeRegistry) {
        reg.sample_path(cycle, "dram.inflight", self.inflight() as u64);
        for bank in 0..self.config().num_banks {
            // Encode the row-buffer state as row+1, with 0 = precharged,
            // so a closed bank is distinguishable from an open row 0.
            let v = self.open_row(bank).map(|r| r as u64 + 1).unwrap_or(0);
            reg.sample_path(cycle, &format!("dram.row_open.{bank}"), v);
        }
    }
}

impl Probed for FaultyFifo {
    fn register_probes(&self, reg: &mut ProbeRegistry) {
        reg.register("resp_fifo.occupancy", ProbeKind::Vector(16));
        reg.register("resp_fifo.stall.drain_blocked", ProbeKind::Bit);
    }

    fn sample_probes(&self, cycle: u64, reg: &mut ProbeRegistry) {
        reg.sample_path(cycle, "resp_fifo.occupancy", self.len() as u64);
        reg.sample_path(
            cycle,
            "resp_fifo.stall.drain_blocked",
            u64::from(self.drain_blocked),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let plan = FaultPlan::new(42, ChaosProfile::heavy());
        let mut a1 = plan.stream("mem.dram");
        let mut a2 = plan.stream("mem.dram");
        let mut b = plan.stream("mem.resp_fifo");
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same component, same stream");
        assert_ne!(xs, zs, "different components, different streams");
    }

    #[test]
    fn chance_respects_probability_extremes_and_burns_draws() {
        let mut r = ChaosRng::new(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // A zero-probability draw still advances the stream.
        let mut a = ChaosRng::new(9);
        let mut b = ChaosRng::new(9);
        let _ = a.chance(0.0);
        let _ = b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = ChaosRng::new(3);
        for _ in 0..1000 {
            let v = r.range(2, 9);
            assert!((2..=9).contains(&v));
        }
    }

    #[test]
    fn storm_gen_bursts_have_bounded_length_and_reset_replays() {
        let plan = FaultPlan::new(5, ChaosProfile::storms());
        let mut g = StormGen::new(plan, "test.storm");
        let sched: Vec<bool> = (0..500).map(|c| g.stalled(c)).collect();
        assert!(g.counters().stall_storms > 0, "storms must occur");
        assert!(g.counters().storm_cycles >= g.counters().stall_storms);
        // Burst length never exceeds the profile maximum.
        let mut run = 0u64;
        for &s in &sched {
            if s {
                run += 1;
                assert!(run <= ChaosProfile::storms().stall_storm_max);
            } else {
                run = 0;
            }
        }
        g.reset_chaos();
        let replay: Vec<bool> = (0..500).map(|c| g.stalled(c)).collect();
        assert_eq!(sched, replay, "reset_chaos replays the schedule");
    }

    #[test]
    fn inactive_plan_is_cycle_exact_passthrough() {
        let cfg = DramConfig::default();
        let mut plain = Dram::new(64, cfg).unwrap();
        let mut chaotic = FaultyDram::new(64, cfg, FaultPlan::default()).unwrap();
        let data: Vec<Word> = (0..32).collect();
        plain.preload(0, &data).unwrap();
        chaotic.preload(0, &data).unwrap();
        let mut next = 0usize;
        for _ in 0..200 {
            if next < 32 {
                plain.hold_read(next).unwrap();
                chaotic.hold_read(next).unwrap();
            }
            let a = plain.tick();
            let b = chaotic.tick();
            assert_eq!(a, b, "passthrough must be tick-for-tick identical");
            if a.read_accepted.is_some() {
                next += 1;
            }
        }
        assert!(!chaotic.counters().any());
    }

    #[test]
    fn jitter_delays_but_preserves_order_and_data() {
        let cfg = DramConfig::default();
        let plan = FaultPlan::new(11, ChaosProfile::jitter());
        let mut d = FaultyDram::new(256, cfg, plan).unwrap();
        let data: Vec<Word> = (0..128).map(|i| i * 3 + 1).collect();
        d.preload(0, &data).unwrap();
        let mut got = Vec::new();
        let mut next = 0usize;
        for _ in 0..2000 {
            if next < 128 {
                d.hold_read(next).unwrap();
            }
            let r = d.tick();
            if r.read_accepted.is_some() {
                next += 1;
            }
            if let Some((a, v)) = r.response {
                got.push((a, v));
            }
            if got.len() == 128 {
                break;
            }
        }
        let expect: Vec<(usize, Word)> = data.iter().copied().enumerate().collect();
        assert_eq!(got, expect, "jitter must not reorder or corrupt");
        assert!(d.counters().jitter_events > 0, "jitter must occur");
        assert!(d.take_fault().is_none(), "latency-only: nothing to detect");
    }

    #[test]
    fn bit_flip_is_injected_once_and_detected_at_delivery() {
        let cfg = DramConfig::default();
        let plan = FaultPlan::new(23, ChaosProfile::flip(2));
        let mut d = FaultyDram::new(64, cfg, plan).unwrap();
        d.preload(0, &[10, 20, 30, 40]).unwrap();
        let mut next = 0usize;
        let mut got = Vec::new();
        let mut fault = None;
        for _ in 0..200 {
            if next < 4 {
                d.hold_read(next).unwrap();
            }
            let r = d.tick();
            if r.read_accepted.is_some() {
                next += 1;
            }
            if let Some((_, v)) = r.response {
                got.push(v);
                if let Some(f) = d.take_fault() {
                    fault = Some((f, got.len() - 1));
                }
            }
        }
        let (event, at) = fault.expect("flip must be detected");
        assert_eq!(at, 2, "detected on the delivery of response 2");
        assert_eq!(event.kind, FaultKind::BitFlip);
        assert_eq!(event.component, DRAM_COMPONENT);
        assert_eq!(got[2], 30 ^ (1 << event.detail as u32));
        assert_eq!(d.counters().bit_flips_injected, 1);
        assert_eq!(d.counters().bit_flips_detected, 1);
    }

    #[test]
    fn faulty_fifo_blocks_drain_but_never_loses_words() {
        let plan = FaultPlan::new(31, ChaosProfile::drain());
        let mut f = FaultyFifo::new(plan);
        let mut out = Vec::new();
        let mut pushed = 0u64;
        for _cycle in 0..600 {
            f.begin_cycle();
            if pushed < 100 {
                f.push_back(pushed * 7);
                pushed += 1;
            }
            if let Some(w) = f.pop_front() {
                out.push(w);
            }
            if out.len() == 100 {
                break;
            }
        }
        assert_eq!(out, (0..100).map(|i| i * 7).collect::<Vec<_>>());
        assert!(f.counters().slow_drain_cycles > 0, "drain must throttle");
    }

    #[test]
    fn profile_names_round_trip() {
        assert_eq!(ChaosProfile::from_name("off"), Some(ChaosProfile::none()));
        assert_eq!(
            ChaosProfile::from_name("heavy"),
            Some(ChaosProfile::heavy())
        );
        assert_eq!(
            ChaosProfile::from_name("flip:17"),
            Some(ChaosProfile::flip(17))
        );
        assert_eq!(ChaosProfile::from_name("bogus"), None);
        assert!(ChaosProfile::heavy().is_latency_only());
        assert!(!ChaosProfile::flip(0).is_latency_only());
        assert!(!ChaosProfile::none().is_active());
    }

    #[test]
    fn counters_merge_sums_every_field() {
        let mut a = FaultCounters {
            jitter_events: 1,
            bit_flips_injected: 2,
            ..FaultCounters::default()
        };
        let b = FaultCounters {
            jitter_events: 3,
            beats_dropped: 4,
            ..FaultCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.jitter_events, 4);
        assert_eq!(a.bit_flips_injected, 2);
        assert_eq!(a.beats_dropped, 4);
        assert!(a.any());
        assert_eq!(a.data_faults_injected(), 6);
    }
}
