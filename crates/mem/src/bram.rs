//! Synchronous block-RAM model (M20K-style).

use smache_sim::{ResourceUsage, SimError, SimResult, Word};

/// State of one BRAM port for the current cycle.
#[derive(Debug, Clone, Copy, Default)]
struct Port {
    staged_read: Option<usize>,
    staged_write: Option<(usize, Word)>,
    /// Output register: data of the read completed on the previous cycle.
    out: Word,
}

/// A synchronous on-chip block RAM.
///
/// * Reads are registered: data staged with [`Bram::stage_read`] appears on
///   [`Bram::out`] after the next [`Bram::tick`] (1-cycle latency).
/// * Writes staged with [`Bram::stage_write`] are applied at `tick`.
/// * A port performs at most one operation per cycle (read *or* write);
///   violating this is a [`SimError::PortConflict`].
/// * Read-before-write: a read and a write to the same address on different
///   ports in the same cycle returns the *old* data.
#[derive(Debug, Clone)]
pub struct Bram {
    name: String,
    width_bits: u32,
    data: Vec<Word>,
    ports: Vec<Port>,
}

impl Bram {
    /// Creates a zero-initialised BRAM of `depth` words of `width_bits`
    /// logical bits each, with `num_ports` ports (physical devices have at
    /// most 2; more is rejected).
    pub fn new(name: &str, depth: usize, width_bits: u32, num_ports: usize) -> SimResult<Self> {
        if depth == 0 {
            return Err(SimError::Config(format!(
                "bram `{name}`: depth must be positive"
            )));
        }
        if width_bits == 0 || width_bits > 64 {
            return Err(SimError::Config(format!(
                "bram `{name}`: width {width_bits} outside 1..=64"
            )));
        }
        if num_ports == 0 || num_ports > 2 {
            return Err(SimError::PortConflict {
                memory: name.to_string(),
                requested: num_ports as u32,
                available: 2,
            });
        }
        Ok(Bram {
            name: name.to_string(),
            width_bits,
            data: vec![0; depth],
            ports: vec![Port::default(); num_ports],
        })
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Depth in words.
    pub fn depth(&self) -> usize {
        self.data.len()
    }

    /// Logical word width in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    fn check(&self, port: usize, addr: usize) -> SimResult<()> {
        if port >= self.ports.len() {
            return Err(SimError::PortConflict {
                memory: self.name.clone(),
                requested: port as u32 + 1,
                available: self.ports.len() as u32,
            });
        }
        if addr >= self.data.len() {
            return Err(SimError::AddressOutOfRange {
                memory: self.name.clone(),
                addr,
                depth: self.data.len(),
            });
        }
        Ok(())
    }

    /// Stages a read on `port`. Idempotent within a cycle (re-staging the
    /// same or a different address simply replaces the slot, mirroring a
    /// re-evaluated combinational address).
    pub fn stage_read(&mut self, port: usize, addr: usize) -> SimResult<()> {
        self.check(port, addr)?;
        self.ports[port].staged_read = Some(addr);
        Ok(())
    }

    /// Cancels a previously staged read on `port` (address deasserted).
    pub fn cancel_read(&mut self, port: usize) {
        if let Some(p) = self.ports.get_mut(port) {
            p.staged_read = None;
        }
    }

    /// Stages a write on `port`.
    pub fn stage_write(&mut self, port: usize, addr: usize, data: Word) -> SimResult<()> {
        self.check(port, addr)?;
        self.ports[port].staged_write = Some((addr, data));
        Ok(())
    }

    /// Cancels a previously staged write on `port`.
    pub fn cancel_write(&mut self, port: usize) {
        if let Some(p) = self.ports.get_mut(port) {
            p.staged_write = None;
        }
    }

    /// The output register of `port`: data of the read staged on the
    /// previous cycle.
    pub fn out(&self, port: usize) -> Word {
        self.ports[port].out
    }

    /// Applies staged operations: writes commit, reads latch (old data),
    /// stages clear. Call exactly once per cycle.
    pub fn tick(&mut self) -> SimResult<()> {
        // Port-conflict check: one operation per port per cycle.
        for (i, p) in self.ports.iter().enumerate() {
            if p.staged_read.is_some() && p.staged_write.is_some() {
                return Err(SimError::PortConflict {
                    memory: format!("{}.port{}", self.name, i),
                    requested: 2,
                    available: 1,
                });
            }
        }
        // Latch reads first (read-before-write).
        for i in 0..self.ports.len() {
            if let Some(addr) = self.ports[i].staged_read.take() {
                self.ports[i].out = self.data[addr];
            }
        }
        for i in 0..self.ports.len() {
            if let Some((addr, data)) = self.ports[i].staged_write.take() {
                self.data[addr] = data;
            }
        }
        Ok(())
    }

    /// Debug/testbench backdoor: reads a word without consuming a port.
    pub fn peek(&self, addr: usize) -> Word {
        self.data[addr]
    }

    /// Debug/testbench backdoor: writes a word without consuming a port.
    pub fn poke(&mut self, addr: usize, data: Word) {
        self.data[addr] = data;
    }

    /// Synthesised resource report.
    ///
    /// Calibration (see DESIGN.md): synthesis of a registered-output BRAM
    /// buffer allocates one extra word of block memory for the output
    /// register stage, which is what makes the paper's Table I *actual*
    /// static-buffer numbers come out at `(depth+1) × width` per physical
    /// buffer (e.g. 11→12 words, 1024→1025 words).
    pub fn resources(&self) -> ResourceUsage {
        ResourceUsage::bram(((self.depth() as u64) + 1) * self.width_bits as u64)
    }

    /// Ideal (estimate-level) bit count with no synthesis overhead.
    pub fn ideal_bits(&self) -> u64 {
        self.depth() as u64 * self.width_bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_has_one_cycle_latency() {
        let mut b = Bram::new("b", 8, 32, 1).unwrap();
        b.poke(3, 99);
        b.stage_read(0, 3).unwrap();
        assert_eq!(b.out(0), 0, "output register not yet updated");
        b.tick().unwrap();
        assert_eq!(b.out(0), 99);
    }

    #[test]
    fn output_register_holds_without_new_read() {
        let mut b = Bram::new("b", 8, 32, 1).unwrap();
        b.poke(1, 7);
        b.stage_read(0, 1).unwrap();
        b.tick().unwrap();
        b.tick().unwrap(); // no new read staged
        assert_eq!(b.out(0), 7);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut b = Bram::new("b", 4, 32, 2).unwrap();
        b.stage_write(0, 2, 123).unwrap();
        b.tick().unwrap();
        b.stage_read(1, 2).unwrap();
        b.tick().unwrap();
        assert_eq!(b.out(1), 123);
    }

    #[test]
    fn read_before_write_on_same_cycle() {
        let mut b = Bram::new("b", 4, 32, 2).unwrap();
        b.poke(0, 1);
        b.stage_read(0, 0).unwrap();
        b.stage_write(1, 0, 2).unwrap();
        b.tick().unwrap();
        assert_eq!(b.out(0), 1, "read returns old data");
        assert_eq!(b.peek(0), 2, "write still lands");
    }

    #[test]
    fn same_port_read_and_write_is_a_conflict() {
        let mut b = Bram::new("b", 4, 32, 1).unwrap();
        b.stage_read(0, 0).unwrap();
        b.stage_write(0, 1, 5).unwrap();
        let err = b.tick().unwrap_err();
        assert!(matches!(err, SimError::PortConflict { .. }));
    }

    #[test]
    fn restaging_is_idempotent() {
        let mut b = Bram::new("b", 4, 32, 1).unwrap();
        b.poke(2, 42);
        // Simulates delta re-evaluation: the same read staged repeatedly.
        b.stage_read(0, 1).unwrap();
        b.stage_read(0, 2).unwrap();
        b.tick().unwrap();
        assert_eq!(b.out(0), 42, "last staged address wins");
    }

    #[test]
    fn cancel_read_clears_stage() {
        let mut b = Bram::new("b", 4, 32, 1).unwrap();
        b.poke(1, 5);
        b.stage_read(0, 1).unwrap();
        b.cancel_read(0);
        b.tick().unwrap();
        assert_eq!(b.out(0), 0, "cancelled read must not latch");
    }

    #[test]
    fn out_of_range_address_rejected() {
        let mut b = Bram::new("b", 4, 32, 1).unwrap();
        assert!(matches!(
            b.stage_read(0, 4),
            Err(SimError::AddressOutOfRange {
                addr: 4,
                depth: 4,
                ..
            })
        ));
        assert!(b.stage_write(0, 100, 0).is_err());
    }

    #[test]
    fn invalid_configuration_rejected() {
        assert!(Bram::new("b", 0, 32, 1).is_err());
        assert!(Bram::new("b", 4, 0, 1).is_err());
        assert!(Bram::new("b", 4, 65, 1).is_err());
        assert!(Bram::new("b", 4, 32, 0).is_err());
        assert!(Bram::new("b", 4, 32, 3).is_err());
    }

    #[test]
    fn resources_include_output_register_word() {
        let b = Bram::new("b", 11, 32, 1).unwrap();
        assert_eq!(b.resources().bram_bits, 12 * 32);
        assert_eq!(b.ideal_bits(), 11 * 32);
        let b = Bram::new("b", 1024, 32, 1).unwrap();
        assert_eq!(b.resources().bram_bits, 1025 * 32);
    }
}
