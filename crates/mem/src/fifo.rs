//! FIFOs: BRAM-backed (for long stretches) and register-based (for short).
//!
//! In the hybrid (Case-H) stream buffer the stretches of the window between
//! stencil taps never need concurrent random access — they are "accessed
//! logically as a FIFO, but never require more than one concurrent read
//! access" (paper, §III). A [`BramFifo`] models that: first-word
//! fall-through semantics from a registered BRAM output.

use smache_sim::{ResourceUsage, SimError, SimResult, Word};

/// A synchronous first-word-fall-through FIFO backed by block RAM.
///
/// * [`BramFifo::head`] is combinationally valid whenever the FIFO is
///   non-empty (the BRAM's registered output plus bypass — the classic FWFT
///   wrapper).
/// * Push and pop are staged during evaluation and applied at `tick`;
///   simultaneous push+pop is allowed even at full depth (the pop frees the
///   slot), which is exactly the steady-state delay-line behaviour the
///   stream buffer relies on.
///
/// ## Resource accounting
///
/// `resources()` reports `next_power_of_two(capacity) × width` BRAM bits —
/// synthesis rounds FIFO depths up to a power of two (this is what the
/// paper's Table I shows: depth-7 FIFOs synthesise at 8 words, depth-1020
/// at 1024). The read/write pointer and occupancy registers are owned by
/// the enclosing controller in the Smache design (one shared counter for
/// the lock-stepped FIFO pair), so they are *not* counted here; standalone
/// users can add [`BramFifo::pointer_bits`].
#[derive(Debug, Clone)]
pub struct BramFifo {
    name: String,
    width_bits: u32,
    cap: usize,
    buf: Vec<Word>,
    head: usize,
    len: usize,
    staged_push: Option<Word>,
    staged_pop: bool,
}

impl BramFifo {
    /// Creates an empty FIFO of `cap` words.
    pub fn new(name: &str, cap: usize, width_bits: u32) -> SimResult<Self> {
        if cap == 0 {
            return Err(SimError::Config(format!(
                "fifo `{name}`: capacity must be positive"
            )));
        }
        if width_bits == 0 || width_bits > 64 {
            return Err(SimError::Config(format!(
                "fifo `{name}`: width {width_bits} outside 1..=64"
            )));
        }
        Ok(BramFifo {
            name: name.to_string(),
            width_bits,
            cap,
            buf: vec![0; cap],
            head: 0,
            len: 0,
            staged_push: None,
            staged_pop: false,
        })
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when full.
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// The oldest word, if any (first-word fall-through).
    pub fn head(&self) -> Option<Word> {
        (self.len > 0).then(|| self.buf[self.head])
    }

    /// Stages a push for this cycle (idempotent; replaces pending word).
    pub fn stage_push(&mut self, word: Word) {
        self.staged_push = Some(word);
    }

    /// Stages a pop for this cycle (idempotent).
    pub fn stage_pop(&mut self) {
        self.staged_pop = true;
    }

    /// Clears both staged operations.
    pub fn cancel(&mut self) {
        self.staged_push = None;
        self.staged_pop = false;
    }

    /// Applies staged operations. Errors on overflow (push while full with
    /// no pop) or underflow (pop while empty).
    pub fn tick(&mut self) -> SimResult<()> {
        let popping = self.staged_pop;
        let pushing = self.staged_push.is_some();
        self.staged_pop = false;

        if popping && self.len == 0 {
            self.staged_push = None;
            return Err(SimError::Config(format!(
                "fifo `{}`: pop while empty",
                self.name
            )));
        }
        if pushing && !popping && self.len == self.cap {
            self.staged_push = None;
            return Err(SimError::Config(format!(
                "fifo `{}`: push while full",
                self.name
            )));
        }
        if popping {
            self.head = (self.head + 1) % self.cap;
            self.len -= 1;
        }
        if let Some(word) = self.staged_push.take() {
            let tail = (self.head + self.len) % self.cap;
            self.buf[tail] = word;
            self.len += 1;
        }
        Ok(())
    }

    /// Register bits for pointers and occupancy, if the user wants to count
    /// them locally instead of in the enclosing controller.
    pub fn pointer_bits(&self) -> u64 {
        let w = usize::BITS - (self.cap.max(1) - 1).leading_zeros();
        // read ptr + write ptr + occupancy counter
        (3 * w.max(1)) as u64
    }

    /// BRAM bits after synthesis depth rounding (see type docs).
    pub fn resources(&self) -> ResourceUsage {
        ResourceUsage::bram(self.cap.next_power_of_two() as u64 * self.width_bits as u64)
    }

    /// Ideal (estimate-level) bit count with no rounding.
    pub fn ideal_bits(&self) -> u64 {
        self.cap as u64 * self.width_bits as u64
    }
}

/// A small register-based FIFO with the same interface as [`BramFifo`],
/// used when the cost model decides a stretch is cheaper in registers.
#[derive(Debug, Clone)]
pub struct RegFifo {
    inner: BramFifo,
}

impl RegFifo {
    /// Creates an empty register FIFO of `cap` words.
    pub fn new(name: &str, cap: usize, width_bits: u32) -> SimResult<Self> {
        Ok(RegFifo {
            inner: BramFifo::new(name, cap, width_bits)?,
        })
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// True when full.
    pub fn is_full(&self) -> bool {
        self.inner.is_full()
    }

    /// The oldest word, if any.
    pub fn head(&self) -> Option<Word> {
        self.inner.head()
    }

    /// Stages a push for this cycle.
    pub fn stage_push(&mut self, word: Word) {
        self.inner.stage_push(word);
    }

    /// Stages a pop for this cycle.
    pub fn stage_pop(&mut self) {
        self.inner.stage_pop();
    }

    /// Applies staged operations.
    pub fn tick(&mut self) -> SimResult<()> {
        self.inner.tick()
    }

    /// Register bits: exactly `capacity × width` (no depth rounding — the
    /// fabric places registers individually).
    pub fn resources(&self) -> ResourceUsage {
        ResourceUsage::regs(self.inner.cap as u64 * self.inner.width_bits as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut f = BramFifo::new("f", 4, 32).unwrap();
        for v in [1, 2, 3] {
            f.stage_push(v);
            f.tick().unwrap();
        }
        assert_eq!(f.len(), 3);
        let mut out = Vec::new();
        while let Some(h) = f.head() {
            out.push(h);
            f.stage_pop();
            f.tick().unwrap();
        }
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_push_pop_at_full_depth_acts_as_delay_line() {
        let mut f = BramFifo::new("f", 3, 32).unwrap();
        // Fill.
        for v in [10, 20, 30] {
            f.stage_push(v);
            f.tick().unwrap();
        }
        assert!(f.is_full());
        // Steady state: push+pop each cycle; output delayed by capacity.
        let mut outputs = Vec::new();
        for v in [40, 50, 60] {
            outputs.push(f.head().unwrap());
            f.stage_pop();
            f.stage_push(v);
            f.tick().unwrap();
            assert!(f.is_full(), "occupancy unchanged in steady state");
        }
        assert_eq!(outputs, vec![10, 20, 30]);
    }

    #[test]
    fn overflow_and_underflow_are_errors() {
        let mut f = BramFifo::new("f", 1, 32).unwrap();
        f.stage_pop();
        assert!(f.tick().is_err(), "pop from empty");
        f.stage_push(1);
        f.tick().unwrap();
        f.stage_push(2);
        assert!(f.tick().is_err(), "push to full without pop");
    }

    #[test]
    fn head_is_none_when_empty() {
        let f = BramFifo::new("f", 2, 32).unwrap();
        assert_eq!(f.head(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn cancel_clears_staged_operations() {
        let mut f = BramFifo::new("f", 2, 32).unwrap();
        f.stage_push(7);
        f.cancel();
        f.tick().unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn wraparound_addressing() {
        let mut f = BramFifo::new("f", 2, 32).unwrap();
        for round in 0..5u64 {
            f.stage_push(round);
            f.tick().unwrap();
            assert_eq!(f.head(), Some(round));
            f.stage_pop();
            f.tick().unwrap();
        }
        assert!(f.is_empty());
    }

    #[test]
    fn bram_bits_round_to_power_of_two_depth() {
        let f = BramFifo::new("f", 7, 32).unwrap();
        assert_eq!(f.resources().bram_bits, 8 * 32);
        assert_eq!(f.ideal_bits(), 7 * 32);
        let f = BramFifo::new("f", 1020, 32).unwrap();
        assert_eq!(f.resources().bram_bits, 1024 * 32);
    }

    #[test]
    fn pointer_bits_scale_logarithmically() {
        let f = BramFifo::new("f", 7, 32).unwrap();
        assert_eq!(f.pointer_bits(), 9); // 3 × ceil(log2 7) = 3 × 3
        let f = BramFifo::new("f", 1020, 32).unwrap();
        assert_eq!(f.pointer_bits(), 30); // 3 × 10
    }

    #[test]
    fn reg_fifo_counts_register_bits_without_rounding() {
        let f = RegFifo::new("f", 7, 32).unwrap();
        assert_eq!(f.resources().registers, 224);
        assert_eq!(f.resources().bram_bits, 0);
    }

    #[test]
    fn reg_fifo_behaves_like_fifo() {
        let mut f = RegFifo::new("f", 2, 32).unwrap();
        f.stage_push(5);
        f.tick().unwrap();
        assert_eq!(f.head(), Some(5));
        f.stage_pop();
        f.tick().unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(BramFifo::new("f", 0, 32).is_err());
        assert!(BramFifo::new("f", 2, 0).is_err());
        assert!(BramFifo::new("f", 2, 65).is_err());
    }
}
