//! Multi-channel DRAM: `N` independent HBM-like channels behind one port.
//!
//! HBM-class memories expose many narrow channels instead of one wide bus;
//! SASA-style stencil frameworks exploit exactly that by striping the grid
//! across channels so consecutive stream addresses land on different
//! channels and the per-channel command-rate limit stops being the
//! bottleneck. This module models that substrate:
//!
//! * every channel is a full [`FaultyDram`] (own bank/row state, own
//!   latency, own seed-derived chaos stream), so per-channel timing and
//!   fault behaviour are independent;
//! * a **channel-interleaved address map** stripes the flat address space
//!   in `interleave_words` blocks: `channel = (addr / interleave) % N`;
//! * a per-channel **command-rate limit** (`cmd_gap` cycles between
//!   accepted read commands) models per-channel bandwidth — with `gap > 1`
//!   a single channel cannot sustain one word per cycle, but `N >= gap`
//!   interleaved channels can;
//! * responses are delivered strictly **in issue order** through a
//!   sequence-tagged reorder buffer, so the consumer sees the same
//!   in-order stream contract as a single [`Dram`](crate::Dram) — faster
//!   channels simply wait in the reorder buffer.
//!
//! With `channels = 1`, `interleave_words = 1` and `cmd_gap = 1` the model
//! is cycle-identical to a bare [`FaultyDram`]: routing and reordering add
//! no latency.

use std::collections::{BTreeMap, VecDeque};

use smache_sim::telemetry::{ProbeKind, ProbeRegistry, Probed};
use smache_sim::{SimError, SimResult, Word};

use crate::dram::{DramConfig, DramStats, DramTick};
use crate::fault::{FaultCounters, FaultEvent, FaultPlan, FaultyDram};

/// Geometry and timing of a [`MultiChannelDram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiChannelConfig {
    /// Per-channel DRAM timing/geometry.
    pub channel: DramConfig,
    /// Number of independent channels (>= 1).
    pub channels: usize,
    /// Words per interleave block: address `a` belongs to channel
    /// `(a / interleave_words) % channels`.
    pub interleave_words: usize,
    /// Minimum cycles between accepted *read* commands on one channel
    /// (1 = full rate). The per-channel bandwidth knob.
    pub cmd_gap: u64,
}

impl Default for MultiChannelConfig {
    fn default() -> Self {
        MultiChannelConfig {
            channel: DramConfig::default(),
            channels: 1,
            interleave_words: 1,
            cmd_gap: 1,
        }
    }
}

impl MultiChannelConfig {
    /// A config with `channels` full-rate channels and word interleaving.
    pub fn with_channels(channels: usize) -> Self {
        MultiChannelConfig {
            channels,
            ..Self::default()
        }
    }
}

/// `N` independent DRAM channels behind a single in-order read/write port.
pub struct MultiChannelDram {
    config: MultiChannelConfig,
    channels: Vec<FaultyDram>,
    words: usize,

    staged_read: Option<usize>,
    staged_write: Option<(usize, Word)>,
    /// Next cycle each channel may accept a read command.
    read_ready_at: Vec<u64>,
    /// Issue-order bookkeeping: per channel, the (sequence, global address)
    /// of reads issued but not yet responded.
    pending: Vec<VecDeque<(u64, usize)>>,
    /// Out-of-order responses parked until their sequence number is due.
    reorder: BTreeMap<u64, (usize, Word)>,
    next_seq: u64,
    next_deliver: u64,
    cycle: u64,
    /// Aggregate stats snapshot, rebuilt on demand.
    stats: DramStats,
}

impl MultiChannelDram {
    /// Builds a multi-channel DRAM covering `words` flat addresses.
    ///
    /// An active `plan` gives every channel its own chaos stream (the plan
    /// seed is folded with the channel index), so channels jitter
    /// independently but reproducibly.
    pub fn new(words: usize, config: MultiChannelConfig, plan: FaultPlan) -> SimResult<Self> {
        if config.channels == 0 {
            return Err(SimError::Config("channel count must be >= 1".into()));
        }
        if config.interleave_words == 0 {
            return Err(SimError::Config("interleave_words must be >= 1".into()));
        }
        if config.cmd_gap == 0 {
            return Err(SimError::Config("cmd_gap must be >= 1".into()));
        }
        let c = config.channels;
        let stride = config.interleave_words * c;
        // Per-channel capacity: enough local words for any global address.
        let local_words = words.div_ceil(stride).max(1) * config.interleave_words;
        let channels = (0..c)
            .map(|i| {
                // Channel 0 keeps the plan seed unchanged so the one-channel
                // model is stream-identical to a bare FaultyDram.
                let seed = plan.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                FaultyDram::new(
                    local_words,
                    config.channel,
                    FaultPlan::new(seed, plan.profile),
                )
            })
            .collect::<SimResult<Vec<_>>>()?;
        Ok(MultiChannelDram {
            config,
            channels,
            words,
            staged_read: None,
            staged_write: None,
            read_ready_at: vec![0; c],
            pending: (0..c).map(|_| VecDeque::new()).collect(),
            reorder: BTreeMap::new(),
            next_seq: 0,
            next_deliver: 0,
            cycle: 0,
            stats: DramStats::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &MultiChannelConfig {
        &self.config
    }

    /// Flat capacity in words.
    pub fn len(&self) -> usize {
        self.words
    }

    /// True when the capacity is zero words.
    pub fn is_empty(&self) -> bool {
        self.words == 0
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The channel a flat address maps to.
    #[inline]
    pub fn channel_of(&self, addr: usize) -> usize {
        (addr / self.config.interleave_words) % self.channels.len()
    }

    /// The channel-local address of a flat address.
    #[inline]
    fn local_of(&self, addr: usize) -> usize {
        let ilv = self.config.interleave_words;
        (addr / (ilv * self.channels.len())) * ilv + addr % ilv
    }

    fn check_addr(&self, addr: usize) -> SimResult<()> {
        if addr >= self.words {
            return Err(SimError::AddressOutOfRange {
                memory: "mcdram".to_string(),
                addr,
                depth: self.words,
            });
        }
        Ok(())
    }

    /// Aggregate statistics summed over every channel.
    pub fn stats(&mut self) -> &DramStats {
        let mut total = DramStats::default();
        for ch in &self.channels {
            let s = ch.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.row_hits += s.row_hits;
            total.row_misses += s.row_misses;
            total.sequential_reads += s.sequential_reads;
            total.read_stall_cycles += s.read_stall_cycles;
        }
        self.stats = total;
        &self.stats
    }

    /// Statistics of one channel.
    pub fn channel_stats(&self, channel: usize) -> &DramStats {
        self.channels[channel].stats()
    }

    /// Resets every channel's statistics.
    pub fn reset_stats(&mut self) {
        for ch in &mut self.channels {
            ch.reset_stats();
        }
    }

    /// Merged fault counters of every channel.
    pub fn counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for ch in &self.channels {
            total.merge(ch.counters());
        }
        total
    }

    /// Drains the fault-event logs of every channel, in channel order.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for ch in &mut self.channels {
            events.extend(ch.drain_events());
        }
        events.sort_by_key(|e| e.cycle);
        events
    }

    /// A pending data-corruption fault detected on any channel, if any.
    pub fn take_fault(&mut self) -> Option<FaultEvent> {
        self.channels.iter_mut().find_map(FaultyDram::take_fault)
    }

    /// Re-seeds every channel's chaos stream and precharges all banks.
    pub fn reset_chaos(&mut self) {
        for ch in &mut self.channels {
            ch.reset_chaos();
        }
    }

    /// Clears the port state (staged commands, reorder buffer, sequence
    /// counters) without touching memory contents or statistics.
    pub fn reset_port(&mut self) {
        self.staged_read = None;
        self.staged_write = None;
        self.read_ready_at = vec![0; self.channels.len()];
        for q in &mut self.pending {
            q.clear();
        }
        self.reorder.clear();
        self.next_seq = 0;
        self.next_deliver = 0;
        self.cycle = 0;
    }

    /// Scatters `words` into the channels starting at flat address `base`.
    pub fn preload(&mut self, base: usize, words: &[Word]) -> SimResult<()> {
        if !words.is_empty() {
            self.check_addr(base + words.len() - 1)?;
        }
        for (i, &w) in words.iter().enumerate() {
            let addr = base + i;
            let (c, l) = (self.channel_of(addr), self.local_of(addr));
            self.channels[c].preload(l, &[w])?;
        }
        Ok(())
    }

    /// Gathers `len` words from the channels starting at flat address
    /// `base`.
    pub fn dump(&self, base: usize, len: usize) -> SimResult<Vec<Word>> {
        if len > 0 {
            self.check_addr(base + len - 1)?;
        }
        let mut out = Vec::with_capacity(len);
        for addr in base..base + len {
            let (c, l) = (self.channel_of(addr), self.local_of(addr));
            out.push(self.channels[c].dump(l, 1)?[0]);
        }
        Ok(out)
    }

    /// Reads issued but not yet delivered (includes reordered responses).
    pub fn inflight(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum::<usize>() + self.reorder.len()
    }

    /// The channel the oldest outstanding read belongs to — where a
    /// starved consumer is actually waiting. `None` when nothing is
    /// outstanding.
    pub fn starving_channel(&self) -> Option<usize> {
        if self.reorder.contains_key(&self.next_deliver) {
            // The word is already here; delivery is next tick.
            return None;
        }
        self.pending
            .iter()
            .position(|q| q.front().is_some_and(|&(seq, _)| seq == self.next_deliver))
    }

    /// Stages a read command for the next tick (idempotent).
    pub fn hold_read(&mut self, addr: usize) -> SimResult<()> {
        self.check_addr(addr)?;
        self.staged_read = Some(addr);
        Ok(())
    }

    /// Withdraws any staged read.
    pub fn cancel_read(&mut self) {
        self.staged_read = None;
    }

    /// Stages a write command for the next tick (idempotent).
    pub fn hold_write(&mut self, addr: usize, data: Word) -> SimResult<()> {
        self.check_addr(addr)?;
        self.staged_write = Some((addr, data));
        Ok(())
    }

    /// Withdraws any staged write.
    pub fn cancel_write(&mut self) {
        self.staged_write = None;
    }

    /// Advances every channel one cycle and reports, in global terms, what
    /// the port did: accepted commands carry their flat addresses, and at
    /// most one response is delivered per cycle, strictly in issue order.
    pub fn tick(&mut self) -> DramTick {
        // Route the staged commands to their channels; everything else is
        // explicitly cancelled so no stale staging survives.
        let read_route = self.staged_read.map(|addr| {
            let c = self.channel_of(addr);
            (addr, c, self.local_of(addr))
        });
        let write_route = self.staged_write.map(|(addr, w)| {
            let c = self.channel_of(addr);
            (addr, c, self.local_of(addr), w)
        });
        for (c, ch) in self.channels.iter_mut().enumerate() {
            match read_route {
                Some((_, rc, local)) if rc == c && self.cycle >= self.read_ready_at[c] => {
                    ch.hold_read(local).expect("local address in range");
                }
                _ => ch.cancel_read(),
            }
            match write_route {
                Some((_, wc, local, w)) if wc == c => {
                    ch.hold_write(local, w).expect("local address in range");
                }
                _ => ch.cancel_write(),
            }
        }

        let mut out = DramTick::default();
        for c in 0..self.channels.len() {
            let tick = self.channels[c].tick();
            if tick.read_accepted.is_some() {
                let (gaddr, _, _) = read_route.expect("accept implies a routed read");
                out.read_accepted = Some(gaddr);
                self.pending[c].push_back((self.next_seq, gaddr));
                self.next_seq += 1;
                self.read_ready_at[c] = self.cycle + self.config.cmd_gap;
                self.staged_read = None;
            }
            if tick.write_accepted.is_some() {
                let (gaddr, ..) = write_route.expect("accept implies a routed write");
                out.write_accepted = Some(gaddr);
                self.staged_write = None;
            }
            if let Some((_, w)) = tick.response {
                let (seq, gaddr) = self.pending[c]
                    .pop_front()
                    .expect("response implies an outstanding read");
                self.reorder.insert(seq, (gaddr, w));
            }
        }

        // Deliver the next in-order response, if it has arrived.
        if let Some(resp) = self.reorder.remove(&self.next_deliver) {
            out.response = Some(resp);
            self.next_deliver += 1;
        }
        self.cycle += 1;
        out
    }
}

impl Probed for MultiChannelDram {
    fn register_probes(&self, reg: &mut ProbeRegistry) {
        for c in 0..self.channels.len() {
            reg.register(&format!("mcdram.ch{c}.inflight"), ProbeKind::Vector(16));
        }
        reg.register("mcdram.reorder", ProbeKind::Vector(16));
    }

    fn sample_probes(&self, cycle: u64, reg: &mut ProbeRegistry) {
        for (c, q) in self.pending.iter().enumerate() {
            reg.sample_path(cycle, &format!("mcdram.ch{c}.inflight"), q.len() as u64);
        }
        reg.sample_path(cycle, "mcdram.reorder", self.reorder.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ChaosProfile;

    fn clean(words: usize, cfg: MultiChannelConfig) -> MultiChannelDram {
        MultiChannelDram::new(words, cfg, FaultPlan::default()).expect("mcdram")
    }

    /// Streams `n` sequential reads through `m`, returning the (cycle,
    /// word) of every delivered response.
    fn stream_reads(m: &mut MultiChannelDram, n: usize, budget: u64) -> Vec<(u64, Word)> {
        let mut next = 0usize;
        let mut got = Vec::new();
        for cycle in 0..budget {
            if next < n {
                m.hold_read(next).unwrap();
            } else {
                m.cancel_read();
            }
            let tick = m.tick();
            if tick.read_accepted.is_some() {
                next += 1;
            }
            if let Some((_, w)) = tick.response {
                got.push((cycle, w));
            }
            if got.len() == n {
                break;
            }
        }
        got
    }

    #[test]
    fn address_map_round_trips() {
        let m = clean(
            64,
            MultiChannelConfig {
                channels: 4,
                interleave_words: 2,
                ..MultiChannelConfig::default()
            },
        );
        // Blocks of 2 words rotate across 4 channels.
        assert_eq!(m.channel_of(0), 0);
        assert_eq!(m.channel_of(1), 0);
        assert_eq!(m.channel_of(2), 1);
        assert_eq!(m.channel_of(7), 3);
        assert_eq!(m.channel_of(8), 0);
        // Local addresses are dense per channel.
        assert_eq!(m.local_of(0), 0);
        assert_eq!(m.local_of(1), 1);
        assert_eq!(m.local_of(8), 2);
        assert_eq!(m.local_of(9), 3);
    }

    #[test]
    fn preload_dump_round_trips_across_channels() {
        for channels in [1usize, 2, 3, 4] {
            let mut m = clean(100, MultiChannelConfig::with_channels(channels));
            let words: Vec<Word> = (0..100).map(|i| i * 13 + 7).collect();
            m.preload(0, &words).unwrap();
            assert_eq!(m.dump(0, 100).unwrap(), words, "{channels} channels");
            // An offset window too.
            assert_eq!(m.dump(25, 50).unwrap(), words[25..75]);
        }
    }

    #[test]
    fn single_channel_is_stream_identical_to_faulty_dram() {
        let words: Vec<Word> = (0..64).map(|i| i * 3 + 1).collect();
        let mut multi = clean(64, MultiChannelConfig::default());
        multi.preload(0, &words).unwrap();
        let multi_got = stream_reads(&mut multi, 64, 4096);

        let mut single = FaultyDram::new(64, DramConfig::default(), FaultPlan::default()).unwrap();
        single.preload(0, &words).unwrap();
        let mut next = 0usize;
        let mut single_got = Vec::new();
        for cycle in 0..4096u64 {
            if next < 64 {
                single.hold_read(next).unwrap();
            } else {
                single.cancel_read();
            }
            let tick = single.tick();
            if tick.read_accepted.is_some() {
                next += 1;
            }
            if let Some((_, w)) = tick.response {
                single_got.push((cycle, w));
            }
            if single_got.len() == 64 {
                break;
            }
        }
        assert_eq!(multi_got, single_got, "cycle-identical delivery");
    }

    #[test]
    fn responses_are_delivered_in_issue_order() {
        let mut m = clean(
            64,
            MultiChannelConfig {
                channels: 4,
                ..MultiChannelConfig::default()
            },
        );
        let words: Vec<Word> = (0..64).map(|i| i + 100).collect();
        m.preload(0, &words).unwrap();
        let got = stream_reads(&mut m, 64, 8192);
        let data: Vec<Word> = got.iter().map(|&(_, w)| w).collect();
        assert_eq!(data, words, "in-order despite channel parallelism");
    }

    #[test]
    fn command_gap_throttles_one_channel_but_not_many() {
        let gap = 4u64;
        let run = |channels: usize| {
            let mut m = clean(
                256,
                MultiChannelConfig {
                    channels,
                    cmd_gap: gap,
                    ..MultiChannelConfig::default()
                },
            );
            let words: Vec<Word> = (0..256).collect();
            m.preload(0, &words).unwrap();
            let got = stream_reads(&mut m, 256, 65536);
            assert_eq!(got.len(), 256);
            got.last().unwrap().0
        };
        let slow = run(1);
        let fast = run(4);
        assert!(
            fast * 2 < slow,
            "4 channels must beat 1 throttled channel: {fast} vs {slow}"
        );
    }

    #[test]
    fn writes_land_on_the_right_channel() {
        let mut m = clean(32, MultiChannelConfig::with_channels(4));
        for addr in 0..32usize {
            m.hold_write(addr, addr as Word * 11).unwrap();
            for _ in 0..64 {
                if m.tick().write_accepted.is_some() {
                    break;
                }
            }
        }
        assert_eq!(
            m.dump(0, 32).unwrap(),
            (0..32).map(|i| i * 11).collect::<Vec<Word>>()
        );
    }

    #[test]
    fn chaos_streams_differ_per_channel_but_are_reproducible() {
        let plan = FaultPlan::new(9, ChaosProfile::jitter());
        let mk = || {
            let mut m = MultiChannelDram::new(128, MultiChannelConfig::with_channels(2), plan)
                .expect("mcdram");
            m.preload(0, &(0..128).collect::<Vec<Word>>()).unwrap();
            stream_reads(&mut m, 128, 65536)
        };
        assert_eq!(mk(), mk(), "same seed, same timing");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad =
            |cfg: MultiChannelConfig| MultiChannelDram::new(16, cfg, FaultPlan::default()).is_err();
        assert!(bad(MultiChannelConfig {
            channels: 0,
            ..MultiChannelConfig::default()
        }));
        assert!(bad(MultiChannelConfig {
            interleave_words: 0,
            ..MultiChannelConfig::default()
        }));
        assert!(bad(MultiChannelConfig {
            cmd_gap: 0,
            ..MultiChannelConfig::default()
        }));
        let mut m = clean(16, MultiChannelConfig::default());
        assert!(m.hold_read(16).is_err(), "out-of-range address");
    }

    #[test]
    fn aggregate_stats_sum_channels() {
        let mut m = clean(64, MultiChannelConfig::with_channels(4));
        m.preload(0, &(0..64).collect::<Vec<Word>>()).unwrap();
        let got = stream_reads(&mut m, 64, 8192);
        assert_eq!(got.len(), 64);
        assert_eq!(m.stats().reads, 64);
        assert!(
            m.stats().bytes_read > 0,
            "the aggregate carries byte traffic, not just command counts"
        );
        let per_channel: u64 = (0..4).map(|c| m.channel_stats(c).reads).sum();
        assert_eq!(per_channel, 64);
        // Word-interleaved sequential stream spreads evenly.
        assert_eq!(m.channel_stats(0).reads, 16);
        assert_eq!(m.channel_stats(3).reads, 16);
    }
}
