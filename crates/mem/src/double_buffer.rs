//! The transparently double-buffered static-buffer store.
//!
//! A static buffer in Smache holds a fixed set of stencil elements with very
//! large reach (e.g. the wrapped-around top/bottom rows under circular
//! boundary conditions). During work-instance `k` the *active* bank serves
//! reads while the *shadow* bank concurrently absorbs write-through updates
//! (the kernel's outputs that will be this buffer's contents for instance
//! `k+1`); the banks swap between instances — the paper's "white and black
//! buffers ... read and written concurrently, and swapped after every
//! work-instance".

use smache_sim::{ResourceUsage, SimError, SimResult, Word};

/// Physical placement of a memory, selecting latency and resource type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Block RAM: synchronous read (1-cycle latency), costs BRAM bits.
    Bram,
    /// Distributed registers: combinational read, costs register bits.
    Reg,
}

impl MemKind {
    /// Lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            MemKind::Bram => "bram",
            MemKind::Reg => "reg",
        }
    }
}

/// A ping-pong pair of equally sized on-chip buffers.
pub struct DoubleBuffer {
    name: String,
    width_bits: u32,
    kind: MemKind,
    banks: [Vec<Word>; 2],
    /// Index of the bank currently serving reads.
    active: usize,
    /// Two read ports (the native dual-port of a BRAM): staged addresses
    /// and registered outputs.
    staged_reads: [Option<usize>; 2],
    /// Read output registers (model the BRAM registered outputs; for the
    /// register kind they simply pipeline the combinational read, keeping
    /// the controller interface uniform).
    outs: [Word; 2],
    staged_shadow_writes: Vec<(usize, Word)>,
    staged_active_writes: Vec<(usize, Word)>,
    swap_staged: bool,
}

impl DoubleBuffer {
    /// Creates a zeroed double buffer of `depth` words per bank.
    pub fn new(name: &str, depth: usize, width_bits: u32, kind: MemKind) -> SimResult<Self> {
        if depth == 0 {
            return Err(SimError::Config(format!(
                "double buffer `{name}`: depth must be positive"
            )));
        }
        if width_bits == 0 || width_bits > 64 {
            return Err(SimError::Config(format!(
                "double buffer `{name}`: width {width_bits} outside 1..=64"
            )));
        }
        Ok(DoubleBuffer {
            name: name.to_string(),
            width_bits,
            kind,
            banks: [vec![0; depth], vec![0; depth]],
            active: 0,
            staged_reads: [None, None],
            outs: [0, 0],
            staged_shadow_writes: Vec::new(),
            staged_active_writes: Vec::new(),
            swap_staged: false,
        })
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Words per bank.
    pub fn depth(&self) -> usize {
        self.banks[0].len()
    }

    /// Memory kind of both banks.
    pub fn kind(&self) -> MemKind {
        self.kind
    }

    fn check(&self, addr: usize) -> SimResult<()> {
        if addr >= self.depth() {
            return Err(SimError::AddressOutOfRange {
                memory: self.name.clone(),
                addr,
                depth: self.depth(),
            });
        }
        Ok(())
    }

    /// Stages a read of the active bank on port 0; the data appears on
    /// [`DoubleBuffer::out`] after the next [`DoubleBuffer::tick`].
    pub fn stage_read(&mut self, addr: usize) -> SimResult<()> {
        self.stage_read_port(0, addr)
    }

    /// Stages a read of the active bank on one of the two BRAM ports.
    pub fn stage_read_port(&mut self, port: usize, addr: usize) -> SimResult<()> {
        self.check(addr)?;
        if port >= 2 {
            return Err(SimError::PortConflict {
                memory: self.name.clone(),
                requested: port as u32 + 1,
                available: 2,
            });
        }
        self.staged_reads[port] = Some(addr);
        Ok(())
    }

    /// The registered read output of port 0.
    pub fn out(&self) -> Word {
        self.outs[0]
    }

    /// The registered read output of `port`.
    pub fn out_port(&self, port: usize) -> Word {
        self.outs[port]
    }

    /// Combinational read of the active bank — only legal for the register
    /// kind (BRAMs cannot serve same-cycle reads).
    pub fn read_now(&self, addr: usize) -> SimResult<Word> {
        if self.kind != MemKind::Reg {
            return Err(SimError::Config(format!(
                "double buffer `{}`: combinational read on a BRAM bank",
                self.name
            )));
        }
        self.check(addr)?;
        Ok(self.banks[self.active][addr])
    }

    /// Stages a write-through update into the *shadow* bank (the contents
    /// for the next work-instance).
    pub fn stage_write_shadow(&mut self, addr: usize, data: Word) -> SimResult<()> {
        self.check(addr)?;
        stage(&mut self.staged_shadow_writes, addr, data);
        Ok(())
    }

    /// Stages a write into the *active* bank — used by the warm-up prefetch
    /// (FSM-1), which fills the buffer that the first instance will read.
    pub fn stage_write_active(&mut self, addr: usize, data: Word) -> SimResult<()> {
        self.check(addr)?;
        stage(&mut self.staged_active_writes, addr, data);
        Ok(())
    }

    /// Stages a bank swap at the end of this cycle (between instances).
    pub fn stage_swap(&mut self) {
        self.swap_staged = true;
    }

    /// Which bank currently serves reads (testing/reporting).
    pub fn active_bank(&self) -> usize {
        self.active
    }

    /// Applies staged reads, writes and swap. The read latches from the
    /// pre-swap active bank; the swap happens last, modelling a registered
    /// bank-select flag.
    pub fn tick(&mut self) {
        for port in 0..2 {
            if let Some(addr) = self.staged_reads[port].take() {
                self.outs[port] = self.banks[self.active][addr];
            }
        }
        for (addr, data) in self.staged_shadow_writes.drain(..) {
            let shadow = 1 - self.active;
            self.banks[shadow][addr] = data;
        }
        for (addr, data) in self.staged_active_writes.drain(..) {
            let active = self.active;
            self.banks[active][addr] = data;
        }
        if self.swap_staged {
            self.active = 1 - self.active;
            self.swap_staged = false;
        }
    }

    /// Testbench backdoor: write directly into a bank.
    pub fn poke(&mut self, bank: usize, addr: usize, data: Word) {
        self.banks[bank][addr] = data;
    }

    /// Testbench backdoor: read directly from a bank.
    pub fn peek(&self, bank: usize, addr: usize) -> Word {
        self.banks[bank][addr]
    }

    /// Resource report for both banks.
    ///
    /// BRAM kind: each bank is a physical BRAM buffer and carries the
    /// synthesis output-register word — `(depth+1) × width` bits per bank,
    /// matching the paper's Table I actuals. Register kind: exact bits.
    pub fn resources(&self) -> ResourceUsage {
        let per_bank = match self.kind {
            MemKind::Bram => {
                ResourceUsage::bram((self.depth() as u64 + 1) * self.width_bits as u64)
            }
            MemKind::Reg => ResourceUsage::regs(self.depth() as u64 * self.width_bits as u64),
        };
        per_bank + per_bank
    }

    /// Ideal (estimate-level) bits for both banks, no synthesis overhead.
    pub fn ideal_bits(&self) -> u64 {
        2 * self.depth() as u64 * self.width_bits as u64
    }
}

fn stage(stages: &mut Vec<(usize, Word)>, addr: usize, data: Word) {
    if let Some(slot) = stages.iter_mut().find(|(a, _)| *a == addr) {
        slot.1 = data;
    } else {
        stages.push((addr, data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_come_from_active_bank() {
        let mut db = DoubleBuffer::new("t", 4, 32, MemKind::Bram).unwrap();
        db.poke(0, 2, 11);
        db.poke(1, 2, 22);
        db.stage_read(2).unwrap();
        db.tick();
        assert_eq!(db.out(), 11);
        db.stage_swap();
        db.tick();
        db.stage_read(2).unwrap();
        db.tick();
        assert_eq!(db.out(), 22);
    }

    #[test]
    fn shadow_writes_become_visible_after_swap() {
        let mut db = DoubleBuffer::new("t", 2, 32, MemKind::Bram).unwrap();
        db.stage_write_shadow(0, 77).unwrap();
        db.tick();
        db.stage_read(0).unwrap();
        db.tick();
        assert_eq!(db.out(), 0, "shadow write must not disturb the active bank");
        db.stage_swap();
        db.tick();
        db.stage_read(0).unwrap();
        db.tick();
        assert_eq!(db.out(), 77);
    }

    #[test]
    fn concurrent_read_and_shadow_write_same_address() {
        // The paper's "read and written concurrently" property.
        let mut db = DoubleBuffer::new("t", 2, 32, MemKind::Bram).unwrap();
        db.poke(0, 1, 5);
        db.stage_read(1).unwrap();
        db.stage_write_shadow(1, 9).unwrap();
        db.tick();
        assert_eq!(db.out(), 5, "active data served");
        assert_eq!(db.peek(1, 1), 9, "shadow updated in the same cycle");
    }

    #[test]
    fn active_writes_serve_warmup_prefetch() {
        let mut db = DoubleBuffer::new("t", 2, 32, MemKind::Bram).unwrap();
        db.stage_write_active(1, 42).unwrap();
        db.tick();
        db.stage_read(1).unwrap();
        db.tick();
        assert_eq!(db.out(), 42);
    }

    #[test]
    fn read_latches_pre_swap_bank_when_swap_same_cycle() {
        let mut db = DoubleBuffer::new("t", 1, 32, MemKind::Bram).unwrap();
        db.poke(0, 0, 1);
        db.poke(1, 0, 2);
        db.stage_read(0).unwrap();
        db.stage_swap();
        db.tick();
        assert_eq!(
            db.out(),
            1,
            "read uses the bank that was active when staged"
        );
        assert_eq!(db.active_bank(), 1);
    }

    #[test]
    fn combinational_read_only_for_register_kind() {
        let mut db = DoubleBuffer::new("t", 2, 32, MemKind::Reg).unwrap();
        db.poke(0, 1, 3);
        assert_eq!(db.read_now(1).unwrap(), 3);
        let bram = DoubleBuffer::new("t", 2, 32, MemKind::Bram).unwrap();
        assert!(bram.read_now(1).is_err());
    }

    #[test]
    fn restaged_write_replaces_pending() {
        let mut db = DoubleBuffer::new("t", 2, 32, MemKind::Bram).unwrap();
        db.stage_write_shadow(0, 1).unwrap();
        db.stage_write_shadow(0, 2).unwrap();
        db.tick();
        assert_eq!(db.peek(1, 0), 2);
    }

    #[test]
    fn bounds_checked_everywhere() {
        let mut db = DoubleBuffer::new("t", 2, 32, MemKind::Bram).unwrap();
        assert!(db.stage_read(2).is_err());
        assert!(db.stage_write_shadow(5, 0).is_err());
        assert!(db.stage_write_active(5, 0).is_err());
    }

    #[test]
    fn bram_resources_match_table1_calibration() {
        // One static buffer of the 11-wide grid: 2 banks × (11+1) words.
        let db = DoubleBuffer::new("T", 11, 32, MemKind::Bram).unwrap();
        assert_eq!(db.resources().bram_bits, 2 * 12 * 32);
        assert_eq!(db.ideal_bits(), 2 * 11 * 32);
    }

    #[test]
    fn reg_resources_are_exact() {
        let db = DoubleBuffer::new("T", 11, 32, MemKind::Reg).unwrap();
        assert_eq!(db.resources().registers, 2 * 11 * 32);
        assert_eq!(db.resources().bram_bits, 0);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(DoubleBuffer::new("t", 0, 32, MemKind::Bram).is_err());
        assert!(DoubleBuffer::new("t", 2, 0, MemKind::Bram).is_err());
    }
}
