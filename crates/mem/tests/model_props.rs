//! Model-based property tests: every memory component against a trivially
//! correct software reference, over random operation sequences.

use proptest::prelude::*;
use smache_mem::{Bram, BramFifo, DoubleBuffer, Dram, DramConfig, MemKind, RegFile, ShiftReg};
use std::collections::VecDeque;

/// Operations applied to a FIFO each cycle.
#[derive(Debug, Clone, Copy)]
enum FifoOp {
    Push(u64),
    Pop,
    PushPop(u64),
    Idle,
}

fn arb_fifo_op() -> impl Strategy<Value = FifoOp> {
    prop_oneof![
        (0u64..1000).prop_map(FifoOp::Push),
        Just(FifoOp::Pop),
        (0u64..1000).prop_map(FifoOp::PushPop),
        Just(FifoOp::Idle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bram_fifo_matches_vecdeque(
        cap in 1usize..16,
        ops in proptest::collection::vec(arb_fifo_op(), 1..200),
    ) {
        let mut fifo = BramFifo::new("f", cap, 32).expect("fifo");
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            // Stage only legal operations (the contract callers follow).
            match op {
                FifoOp::Push(w) if model.len() < cap => {
                    fifo.stage_push(w);
                    model.push_back(w);
                }
                FifoOp::Pop if !model.is_empty() => {
                    fifo.stage_pop();
                    model.pop_front();
                }
                FifoOp::PushPop(w) if !model.is_empty() => {
                    fifo.stage_push(w);
                    fifo.stage_pop();
                    model.pop_front();
                    model.push_back(w);
                }
                _ => {}
            }
            fifo.tick().expect("legal ops");
            prop_assert_eq!(fifo.len(), model.len());
            prop_assert_eq!(fifo.head(), model.front().copied());
            prop_assert_eq!(fifo.is_empty(), model.is_empty());
            prop_assert_eq!(fifo.is_full(), model.len() == cap);
        }
    }

    #[test]
    fn shift_reg_matches_rotation_model(
        len in 1usize..32,
        words in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut sr = ShiftReg::new("s", len, 32).expect("shiftreg");
        let mut model = vec![0u64; len];
        for w in words {
            sr.stage_shift(w);
            let expelled = sr.tick();
            prop_assert_eq!(expelled, Some(model[len - 1]));
            model.rotate_right(1);
            model[0] = w;
            prop_assert_eq!(sr.contents(), &model[..]);
        }
    }

    #[test]
    fn bram_random_rw_matches_array(
        depth in 1usize..32,
        ops in proptest::collection::vec((any::<bool>(), 0usize..32, 0u64..1000), 1..100),
    ) {
        let mut bram = Bram::new("b", depth, 32, 2).expect("bram");
        let mut model = vec![0u64; depth];
        let mut expected_out: Option<u64> = None;
        for (is_write, addr, data) in ops {
            let addr = addr % depth;
            if is_write {
                bram.stage_write(0, addr, data).expect("in range");
                bram.tick().expect("no conflicts");
                model[addr] = data;
            } else {
                bram.stage_read(1, addr).expect("in range");
                bram.tick().expect("no conflicts");
                expected_out = Some(model[addr]);
                prop_assert_eq!(bram.out(1), model[addr]);
            }
            if let Some(v) = expected_out {
                prop_assert_eq!(bram.out(1), v, "output register holds");
            }
        }
    }

    #[test]
    fn regfile_matches_array(
        depth in 1usize..32,
        ops in proptest::collection::vec((0usize..32, 0u64..1000), 1..100),
    ) {
        let mut rf = RegFile::new("r", depth, 32).expect("regfile");
        let mut model = vec![0u64; depth];
        for (addr, data) in ops {
            let addr = addr % depth;
            rf.stage_write(addr, data).expect("in range");
            rf.tick();
            model[addr] = data;
            for (a, &expected) in model.iter().enumerate() {
                prop_assert_eq!(rf.read(a).expect("in range"), expected);
            }
        }
    }

    #[test]
    fn double_buffer_matches_two_array_model(
        depth in 1usize..16,
        ops in proptest::collection::vec(
            (0usize..4, 0usize..16, 0u64..1000), 1..120),
    ) {
        let mut db = DoubleBuffer::new("d", depth, 32, MemKind::Bram).expect("db");
        let mut banks = [vec![0u64; depth], vec![0u64; depth]];
        let mut active = 0usize;
        let mut pending_read: Option<usize> = None;
        let mut out = 0u64;
        for (op, addr, data) in ops {
            let addr = addr % depth;
            match op {
                0 => {
                    db.stage_read(addr).expect("in range");
                    pending_read = Some(addr);
                }
                1 => {
                    db.stage_write_shadow(addr, data).expect("in range");
                    banks[1 - active][addr] = data;
                }
                2 => {
                    db.stage_write_active(addr, data).expect("in range");
                    banks[active][addr] = data;
                }
                _ => {
                    db.stage_swap();
                }
            }
            let swapping = op == 3;
            // Model the read against the pre-swap active bank.
            if let Some(a) = pending_read.take() {
                out = banks[active][a];
            }
            db.tick();
            if swapping {
                active = 1 - active;
            }
            prop_assert_eq!(db.out(), out);
            prop_assert_eq!(db.active_bank(), active);
        }
    }

    /// DRAM: every response returns the preloaded value of its address and
    /// responses arrive in issue order.
    #[test]
    fn dram_responses_in_order_with_correct_data(
        addrs in proptest::collection::vec(0usize..512, 1..80),
    ) {
        let config = DramConfig::default();
        let mut dram = Dram::new(512, config).expect("dram");
        let init: Vec<u64> = (0..512u64).map(|i| i * 3 + 1).collect();
        dram.preload(0, &init).expect("preload");

        let mut issued = 0usize;
        let mut received: Vec<(usize, u64)> = Vec::new();
        let mut guard = 0u64;
        while received.len() < addrs.len() {
            if issued < addrs.len() {
                dram.hold_read(addrs[issued]).expect("in range");
            }
            let r = dram.tick();
            if r.read_accepted.is_some() {
                issued += 1;
            }
            if let Some((a, v)) = r.response {
                received.push((a, v));
            }
            guard += 1;
            prop_assert!(guard < 100_000, "dram stalled");
        }
        for (i, (a, v)) in received.iter().enumerate() {
            prop_assert_eq!(*a, addrs[i], "in-order delivery");
            prop_assert_eq!(*v, init[addrs[i]], "correct data");
        }
        prop_assert_eq!(dram.stats().reads as usize, addrs.len());
        prop_assert_eq!(dram.stats().bytes_read, 4 * addrs.len() as u64);
        let s = dram.stats();
        prop_assert_eq!(
            s.sequential_reads + s.row_hits + s.row_misses,
            s.reads,
            "every read is classified exactly once"
        );
    }

    /// Concurrent writes while reading: the write channel never reorders
    /// against itself and data lands.
    #[test]
    fn dram_writes_land(
        writes in proptest::collection::vec((0usize..128, 0u64..10_000), 1..60),
    ) {
        let mut dram = Dram::new(128, DramConfig::default()).expect("dram");
        let mut model = vec![0u64; 128];
        let mut issued = 0usize;
        let mut guard = 0;
        while issued < writes.len() {
            let (a, v) = writes[issued];
            dram.hold_write(a, v).expect("in range");
            let r = dram.tick();
            if r.write_accepted.is_some() {
                model[a] = v;
                issued += 1;
            }
            guard += 1;
            assert!(guard < 100_000);
        }
        prop_assert_eq!(dram.dump(0, 128).expect("dump"), model);
        prop_assert_eq!(dram.stats().writes as usize, writes.len());
    }
}
