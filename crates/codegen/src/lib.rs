//! # smache-codegen — automated Verilog generation for Smache instances
//!
//! The paper's stated future work: "completely automate the creation of
//! the Smache architecture given a problem with a particular stencil shape
//! and boundary conditions". This crate implements that step: given a
//! [`BufferPlan`](smache::BufferPlan), it emits a self-contained
//! synthesisable-style Verilog-2001 design:
//!
//! * `smache_top` — AXI4-Stream-like top level (data/index/valid/stall),
//!   wiring the controller, buffers and kernel;
//! * `stream_buffer` — the tapped delay line with the plan's exact
//!   segmentation (register chains + BRAM FIFO stretches);
//! * `bram_fifo` — a depth-parameterised synchronous FIFO;
//! * `static_buffer` — the double-buffered static store with write-through
//!   and bank swap;
//! * `gather_unit` — the per-case tuple multiplexer generated from the
//!   plan's range decisions;
//! * `kernel_avg` — the 4-point averaging kernel (or a stub for custom
//!   kernels);
//! * `smache_ctrl` — the three FSMs.
//!
//! The output is deterministic (golden-tested) and structurally checked
//! (balanced `module`/`endmodule`, `begin`/`end`, declared-before-used
//! identifiers at module granularity).

#![warn(missing_docs)]

pub mod emit;
pub mod generate;
pub mod lint;
pub mod testbench;

pub use emit::CodeWriter;
pub use generate::{VerilogDesign, VerilogGen};
pub use lint::{lint_verilog, LintIssue};
pub use testbench::{generate_testbench, Testbench};
