//! Structural checks over generated Verilog.
//!
//! Not a parser — a linter catching the classes of generator bugs that
//! matter: unbalanced `module`/`endmodule`, `begin`/`end` and `case`/
//! `endcase`, unbalanced parentheses/brackets, and duplicate module names.

use std::collections::BTreeSet;

/// One structural problem found in generated source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintIssue {
    /// `module` and `endmodule` counts differ.
    UnbalancedModules {
        /// Count of `module` keywords.
        opens: usize,
        /// Count of `endmodule` keywords.
        closes: usize,
    },
    /// `begin` and `end` counts differ.
    UnbalancedBeginEnd {
        /// Count of `begin`.
        opens: usize,
        /// Count of `end` (excluding `endmodule`/`endcase`/`endfunction`).
        closes: usize,
    },
    /// `case` and `endcase` counts differ.
    UnbalancedCase {
        /// Count of `case`/`casez`/`casex`.
        opens: usize,
        /// Count of `endcase`.
        closes: usize,
    },
    /// Parentheses or brackets do not balance.
    UnbalancedDelimiters {
        /// The delimiter character.
        delimiter: char,
        /// Net open count at end of input.
        depth: i64,
    },
    /// The same module name is declared twice.
    DuplicateModule {
        /// The repeated name.
        name: String,
    },
}

/// Tokenises enough of Verilog to count keywords outside comments/strings.
fn keywords(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut word = String::new();
    let mut in_line_comment = false;
    let mut in_block_comment = false;
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_line_comment {
            if c == '\n' {
                in_line_comment = false;
            }
            continue;
        }
        if in_block_comment {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                in_block_comment = false;
            }
            continue;
        }
        if in_string {
            if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => {
                chars.next();
                in_line_comment = true;
            }
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                in_block_comment = true;
            }
            '"' => in_string = true,
            c if c.is_alphanumeric() || c == '_' => word.push(c),
            c => {
                if !word.is_empty() {
                    out.push(std::mem::take(&mut word));
                }
                if "()[]".contains(c) {
                    out.push(c.to_string());
                }
            }
        }
    }
    if !word.is_empty() {
        out.push(word);
    }
    out
}

/// Runs all structural checks; empty result means clean.
pub fn lint_verilog(src: &str) -> Vec<LintIssue> {
    let toks = keywords(src);
    let mut issues = Vec::new();

    let count = |kw: &str| toks.iter().filter(|t| t.as_str() == kw).count();

    let modules = count("module");
    let endmodules = count("endmodule");
    if modules != endmodules {
        issues.push(LintIssue::UnbalancedModules {
            opens: modules,
            closes: endmodules,
        });
    }

    let begins = count("begin");
    let ends = count("end");
    if begins != ends {
        issues.push(LintIssue::UnbalancedBeginEnd {
            opens: begins,
            closes: ends,
        });
    }

    let cases = count("case") + count("casez") + count("casex");
    let endcases = count("endcase");
    if cases != endcases {
        issues.push(LintIssue::UnbalancedCase {
            opens: cases,
            closes: endcases,
        });
    }

    for (open, close) in [("(", ")"), ("[", "]")] {
        let depth = count(open) as i64 - count(close) as i64;
        if depth != 0 {
            issues.push(LintIssue::UnbalancedDelimiters {
                delimiter: open.chars().next().expect("nonempty"),
                depth,
            });
        }
    }

    // Duplicate module declarations.
    let mut seen = BTreeSet::new();
    let mut iter = toks.iter().peekable();
    while let Some(t) = iter.next() {
        if t == "module" {
            if let Some(name) = iter.peek() {
                if !seen.insert((*name).clone()) {
                    issues.push(LintIssue::DuplicateModule {
                        name: (*name).clone(),
                    });
                }
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_module_passes() {
        let src = "module m(input clk);\nalways @(posedge clk) begin end\nendmodule\n";
        assert!(lint_verilog(src).is_empty());
    }

    #[test]
    fn unbalanced_module_detected() {
        let issues = lint_verilog("module m(); module n(); endmodule");
        assert!(issues.iter().any(|i| matches!(
            i,
            LintIssue::UnbalancedModules {
                opens: 2,
                closes: 1
            }
        )));
    }

    #[test]
    fn unbalanced_begin_end_detected() {
        let issues = lint_verilog("module m(); always begin begin end endmodule");
        assert!(issues.iter().any(|i| matches!(
            i,
            LintIssue::UnbalancedBeginEnd {
                opens: 2,
                closes: 1
            }
        )));
    }

    #[test]
    fn case_balance() {
        let ok = "module m(); always @* case (x) default: ; endcase endmodule";
        assert!(lint_verilog(ok).is_empty());
        let bad = "module m(); always @* case (x) default: ; endmodule";
        assert!(!lint_verilog(bad).is_empty());
    }

    #[test]
    fn comments_and_strings_ignored() {
        let src = "module m();\n// begin begin (\n/* case [ */\ninitial $display(\"begin (\");\nendmodule";
        assert!(lint_verilog(src).is_empty());
    }

    #[test]
    fn paren_balance() {
        let issues = lint_verilog("module m(input x; endmodule");
        assert!(issues.iter().any(|i| matches!(
            i,
            LintIssue::UnbalancedDelimiters {
                delimiter: '(',
                depth: 1
            }
        )));
    }

    #[test]
    fn duplicate_modules_detected() {
        let src = "module m(); endmodule\nmodule m(); endmodule";
        assert!(lint_verilog(src)
            .iter()
            .any(|i| matches!(i, LintIssue::DuplicateModule { name } if name == "m")));
    }

    #[test]
    fn endmodule_not_counted_as_end() {
        // `end` inside `endmodule` must not leak into begin/end counting.
        let src = "module m(); always begin x <= 1; end endmodule";
        assert!(lint_verilog(src).is_empty());
    }
}
