//! Indentation-aware source writer.

use std::fmt::Write as _;

/// A small helper accumulating indented source text.
#[derive(Debug, Default)]
pub struct CodeWriter {
    buf: String,
    indent: usize,
}

impl CodeWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits one line at the current indentation.
    pub fn line(&mut self, s: &str) {
        if s.is_empty() {
            self.buf.push('\n');
            return;
        }
        for _ in 0..self.indent {
            self.buf.push_str("  ");
        }
        let _ = writeln!(self.buf, "{s}");
    }

    /// Emits a blank line.
    pub fn blank(&mut self) {
        self.buf.push('\n');
    }

    /// Increases indentation for the duration of `f`.
    pub fn indented<F: FnOnce(&mut Self)>(&mut self, f: F) {
        self.indent += 1;
        f(self);
        self.indent -= 1;
    }

    /// Opens a block: emits `head`, indents, runs `f`, emits `tail`.
    pub fn block<F: FnOnce(&mut Self)>(&mut self, head: &str, tail: &str, f: F) {
        self.line(head);
        self.indented(f);
        self.line(tail);
    }

    /// The accumulated text.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Current length in bytes (for tests).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_indented() {
        let mut w = CodeWriter::new();
        w.line("module m;");
        w.indented(|w| w.line("wire x;"));
        w.line("endmodule");
        assert_eq!(w.finish(), "module m;\n  wire x;\nendmodule\n");
    }

    #[test]
    fn block_helper_brackets_content() {
        let mut w = CodeWriter::new();
        w.block("always @(posedge clk) begin", "end", |w| {
            w.line("q <= d;");
        });
        let s = w.finish();
        assert!(s.contains("begin\n  q <= d;\nend"));
    }

    #[test]
    fn empty_line_has_no_indent() {
        let mut w = CodeWriter::new();
        w.indented(|w| {
            w.line("");
            w.blank();
        });
        assert_eq!(w.finish(), "\n\n");
        let w2 = CodeWriter::new();
        assert!(w2.is_empty());
        assert_eq!(w2.len(), 0);
    }

    #[test]
    fn nested_blocks() {
        let mut w = CodeWriter::new();
        w.block("a", "z", |w| {
            w.block("b", "y", |w| w.line("core"));
        });
        assert_eq!(w.finish(), "a\n  b\n    core\n  y\nz\n");
    }
}
