//! Golden snapshot of the generated RTL for the paper's validation
//! configuration. Any intentional generator change is blessed by running
//! with `BLESS_RTL=1`; unintentional drift fails here.

use smache::arch::kernel::AverageKernel;
use smache::SmacheBuilder;
use smache_codegen::{generate_testbench, VerilogGen};
use smache_stencil::GridSpec;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

#[test]
fn generated_rtl_matches_golden_snapshot() {
    let plan = SmacheBuilder::new(GridSpec::d2(11, 11).expect("grid"))
        .plan()
        .expect("plan");
    let design = VerilogGen::new(&plan).generate().expect("codegen");
    let input: Vec<u64> = (0..121).collect();
    let tb = generate_testbench(&plan, &AverageKernel, &input).expect("testbench");

    let mut files: Vec<(String, String)> = design.files.clone();
    files.push(("smache_tb.v".into(), tb.source.clone()));
    files.push(("stimulus.hex".into(), tb.stimulus_hex.clone()));
    files.push(("expected.hex".into(), tb.expected_hex.clone()));

    let bless = std::env::var("BLESS_RTL").is_ok();
    let dir = golden_dir();
    for (name, content) in &files {
        let path = dir.join(name);
        if bless {
            std::fs::create_dir_all(&dir).expect("golden dir");
            std::fs::write(&path, content).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!("missing golden file {path:?}; run with BLESS_RTL=1 to create")
        });
        assert_eq!(
            content, &golden,
            "{name} drifted from the golden snapshot; re-run with BLESS_RTL=1 \
             if the change is intentional"
        );
    }
}
