//! Property tests for the simulation kernel: delta convergence is
//! order-independent and pipelines behave like their software models.

use proptest::prelude::*;
use smache_sim::{Module, Reg, Simulator, Wire};

/// A combinational node: out = f(inputs) where f = sum + constant.
struct SumNode {
    inputs: Vec<Wire<u64>>,
    output: Wire<u64>,
    bias: u64,
}

impl Module for SumNode {
    fn name(&self) -> &str {
        "sum"
    }
    fn eval(&mut self, _c: u64) {
        let s: u64 = self
            .inputs
            .iter()
            .map(|w| w.get())
            .fold(self.bias, u64::wrapping_add);
        self.output.drive(s);
    }
    fn commit(&mut self, _c: u64) {}
}

/// A register stage.
struct RegStage {
    input: Wire<u64>,
    output: Wire<u64>,
    reg: Reg<u64>,
}

impl Module for RegStage {
    fn name(&self) -> &str {
        "reg"
    }
    fn eval(&mut self, _c: u64) {
        self.reg.set(self.input.get());
        self.output.drive(self.reg.q());
    }
    fn commit(&mut self, _c: u64) {
        self.reg.tick();
    }
}

/// Builds a random layered combinational DAG (each node reads only wires
/// from earlier layers) and checks the settled value equals the software
/// evaluation, regardless of module registration order.
fn dag_settles(layers: Vec<Vec<(u64, Vec<usize>)>>, shuffle_seed: u64) -> bool {
    let mut sim = Simulator::new();
    let primary = sim.ctx().wire("primary", 3u64);
    let mut wires: Vec<Wire<u64>> = vec![primary.clone()];
    let mut values: Vec<u64> = vec![3];
    let mut modules: Vec<Box<dyn Module>> = Vec::new();

    for layer in &layers {
        let base = wires.len();
        for (bias, srcs) in layer {
            let inputs: Vec<Wire<u64>> = srcs.iter().map(|&s| wires[s % base].clone()).collect();
            let expected = srcs
                .iter()
                .map(|&s| values[s % base])
                .fold(*bias, u64::wrapping_add);
            let out = sim.ctx().wire(&format!("n{}", wires.len()), 0u64);
            modules.push(Box::new(SumNode {
                inputs,
                output: out.clone(),
                bias: *bias,
            }));
            wires.push(out);
            values.push(expected);
        }
    }

    // Shuffle module registration order deterministically.
    let mut order: Vec<usize> = (0..modules.len()).collect();
    let mut state = shuffle_seed | 1;
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    let mut shuffled: Vec<Option<Box<dyn Module>>> = modules.into_iter().map(Some).collect();
    for &i in &order {
        let m = shuffled[i].take().expect("each once");
        sim.add(m);
    }

    sim.step().expect("converges");
    wires.iter().zip(&values).all(|(w, &v)| w.get() == v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_dags_settle_to_software_values(
        layers in proptest::collection::vec(
            proptest::collection::vec(
                (0u64..1000, proptest::collection::vec(0usize..64, 1..4)),
                1..5,
            ),
            1..5,
        ),
        seed in any::<u64>(),
    ) {
        prop_assert!(dag_settles(layers, seed));
    }

    #[test]
    fn register_chains_delay_exactly_their_length(
        depth in 1usize..12,
        inputs in proptest::collection::vec(0u64..1_000_000, 1..40),
    ) {
        let mut sim = Simulator::new();
        let head = sim.ctx().wire("head", 0u64);
        let mut prev = head.clone();
        let mut tail = head.clone();
        for i in 0..depth {
            let out = sim.ctx().wire(&format!("s{i}"), 0u64);
            sim.add(Box::new(RegStage {
                input: prev.clone(),
                output: out.clone(),
                reg: Reg::new(0),
            }));
            prev = out.clone();
            tail = out;
        }
        let mut seen = Vec::new();
        for (t, &x) in inputs.iter().enumerate() {
            sim.ctx().begin_pass();
            head.drive(x);
            sim.step().expect("step");
            // After t+1 steps, the tail shows input[t+1-depth] (or 0).
            let expected = if t + 1 > depth { inputs[t - depth] } else { 0 };
            seen.push((tail.get(), expected));
        }
        for (got, want) in seen {
            prop_assert_eq!(got, want);
        }
    }
}
