//! The event-driven evaluation schedule.
//!
//! Built once at elaboration (lazily, on the first
//! [`Simulator::step`](crate::Simulator::step) after the module list
//! changes), a `Schedule` holds:
//!
//! * a static **evaluation order** — a reverse-post-order walk of the
//!   module→wire→module dependency graph, so producers evaluate before
//!   consumers and an acyclic design settles in a single delta pass;
//! * a **reader index** mapping each wire id to the modules whose `eval`
//!   reads it, so a wire change wakes exactly the modules that care;
//! * the set of **opaque** modules (no [`Sensitivity`](crate::Sensitivity)
//!   declaration), which
//!   are conservatively woken by every change.
//!
//! Per cycle the scheduler runs *waves*. Wave 0 evaluates every module once
//! in schedule order (state-derived outputs may have changed at the previous
//! commit, and the testbench may have driven stimulus between steps). While
//! a module at order position `p` runs, any wire it changes wakes its
//! readers: a reader scheduled later in the current wave (`position > p`)
//! simply sees the new value when its turn comes, at no extra cost; a reader
//! at `position <= p` — which includes genuine combinational feedback — is
//! deferred to the next wave. Waves repeat until no module is woken, bounded
//! by the same `MAX_DELTA_PASSES` budget as the brute-force loop, so a true
//! combinational loop still surfaces as
//! [`SimError::CombinationalLoop`](crate::SimError).
//!
//! Each wave maps onto one signal-context *pass*, preserving the double-drive
//! detection semantics of the brute-force loop: two modules driving different
//! values onto one wire within a wave is a conflict, while a module revising
//! its own output across waves is not.

use std::collections::BinaryHeap;

use crate::module::Module;
use crate::signal::WireId;

/// Counters describing how much evaluation work the scheduler performed.
///
/// `evals / cycles` is the figure of merit: the brute-force loop costs
/// `modules × passes` evaluations per cycle, the event-driven schedule
/// approaches `modules × 1` for well-ordered acyclic designs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Clock cycles completed.
    pub cycles: u64,
    /// Delta passes (waves) executed across all cycles.
    pub passes: u64,
    /// Individual `Module::eval` calls across all cycles.
    pub evals: u64,
}

impl SchedStats {
    /// Mean `eval` calls per cycle (0 when no cycle has run).
    pub fn evals_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.evals as f64 / self.cycles as f64
        }
    }

    /// Mean delta passes per cycle (0 when no cycle has run).
    pub fn passes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.passes as f64 / self.cycles as f64
        }
    }
}

/// The static part of the event-driven schedule (see module docs).
pub(crate) struct Schedule {
    /// Module indices in evaluation order.
    pub(crate) order: Vec<usize>,
    /// `position[m]` = where module `m` sits in `order`.
    position: Vec<usize>,
    /// `readers[w]` = modules whose eval reads wire `w`. Indexed by wire id;
    /// wires created after elaboration fall off the end and wake only the
    /// opaque set.
    readers: Vec<Vec<usize>>,
    /// Modules with no sensitivity declaration, woken by every change.
    opaque: Vec<usize>,
    /// Scratch: wave membership stamps, one slot per module.
    queued: Vec<u64>,
    /// Scratch: monotonically increasing wave identifier.
    wave_seq: u64,
    /// Scratch: min-heap of (position, module) for the wave in flight.
    /// Owned by the schedule so its allocation is reused across cycles.
    heap: BinaryHeap<std::cmp::Reverse<(usize, usize)>>,
    /// Scratch: modules deferred to the next wave.
    next_wave: Vec<usize>,
    /// Scratch: changed-wire ids drained from the context per eval.
    changed_scratch: Vec<WireId>,
}

impl Schedule {
    /// Elaborates the schedule for `modules` over `wire_count` wires.
    pub(crate) fn build(modules: &[Box<dyn Module>], wire_count: u32) -> Self {
        let n = modules.len();
        let sens: Vec<_> = modules.iter().map(|m| m.sensitivity()).collect();

        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); wire_count as usize];
        let mut writers: Vec<Vec<usize>> = vec![Vec::new(); wire_count as usize];
        let mut opaque = Vec::new();
        for (idx, s) in sens.iter().enumerate() {
            match s {
                Some(s) => {
                    for &w in &s.inputs {
                        if let Some(r) = readers.get_mut(w as usize) {
                            r.push(idx);
                        }
                    }
                    for &w in &s.outputs {
                        if let Some(w) = writers.get_mut(w as usize) {
                            w.push(idx);
                        }
                    }
                }
                None => opaque.push(idx),
            }
        }

        // Successor lists: module a -> module b when a drives a wire b reads.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for w in 0..wire_count as usize {
            for &a in &writers[w] {
                for &b in &readers[w] {
                    if a != b {
                        succ[a].push(b);
                    }
                }
            }
        }

        // Reverse post-order DFS gives a topological order on the acyclic
        // part of the graph; cycles (ready/valid feedback, combinational
        // loops) just produce an order the wave mechanism corrects
        // dynamically. Roots are visited sequential-first so state-driven
        // producers (sources, registered datapaths) run before the
        // combinational logic that consumes them.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let root_order = {
            let mut seq: Vec<usize> = Vec::new();
            let mut comb: Vec<usize> = Vec::new();
            for (idx, s) in sens.iter().enumerate() {
                match s {
                    Some(s) if s.sequential => seq.push(idx),
                    _ => comb.push(idx),
                }
            }
            seq.extend(comb);
            seq
        };
        for root in root_order {
            if visited[root] {
                continue;
            }
            // Iterative DFS; the stack holds (node, next-successor index).
            let mut stack = vec![(root, 0usize)];
            visited[root] = true;
            while let Some(&mut (node, ref mut i)) = stack.last_mut() {
                if *i < succ[node].len() {
                    let next = succ[node][*i];
                    *i += 1;
                    if !visited[next] {
                        visited[next] = true;
                        stack.push((next, 0));
                    }
                } else {
                    post.push(node);
                    stack.pop();
                }
            }
        }
        post.reverse();
        // Opaque modules go last, in registration order: they may read
        // anything, so everything known should have settled first.
        let order: Vec<usize> = post
            .iter()
            .copied()
            .filter(|&m| sens[m].is_some())
            .chain(opaque.iter().copied())
            .collect();
        debug_assert_eq!(order.len(), n);

        let mut position = vec![0usize; n];
        for (p, &m) in order.iter().enumerate() {
            position[m] = p;
        }

        Schedule {
            order,
            position,
            readers,
            opaque,
            queued: vec![0; n],
            wave_seq: 0,
            heap: BinaryHeap::new(),
            next_wave: Vec::new(),
            changed_scratch: Vec::new(),
        }
    }

    /// Runs the delta waves for one cycle. `modules` must be the list the
    /// schedule was built from. Returns the number of (passes, evals)
    /// performed, or `None` if the wave budget was exhausted (combinational
    /// loop).
    pub(crate) fn settle(
        &mut self,
        modules: &mut [Box<dyn Module>],
        ctx: &crate::signal::SimCtx,
        cycle: u64,
        max_passes: u32,
    ) -> Result<(u64, u64), crate::SimError> {
        // Scratch state is owned by the schedule so the allocations are
        // reused across cycles; clear any residue from an errored cycle.
        self.heap.clear();
        self.next_wave.clear();

        let mut passes = 0u64;
        let mut evals = 0u64;

        // Wave 0: every module, in schedule order. The order vector is
        // already position-sorted, so the heap is bypassed entirely — and a
        // forward wake (a reader not yet reached this wave) needs no
        // bookkeeping at all, because every module is in wave 0 anyway.
        self.wave_seq += 1;
        let mut stamp = self.wave_seq;
        ctx.begin_pass();
        passes += 1;
        for pos in 0..self.order.len() {
            let m = self.order[pos];
            let log_from = ctx.changed_len();
            modules[m].eval(cycle);
            evals += 1;
            if ctx.changed_len() == log_from {
                continue;
            }
            self.changed_scratch.clear();
            ctx.changed_since(log_from, &mut self.changed_scratch);
            for &w in &self.changed_scratch {
                let readers = self
                    .readers
                    .get(w as usize)
                    .map(|r| r.as_slice())
                    .unwrap_or(&[]);
                for &r in readers.iter().chain(self.opaque.iter()) {
                    if self.position[r] <= pos && self.queued[r] != stamp + 1 {
                        // Already evaluated this wave (or is the module
                        // currently evaluating): genuine feedback, defer to
                        // the next wave.
                        self.queued[r] = stamp + 1;
                        self.next_wave.push(r);
                    }
                }
            }
        }
        if let Some(conflict) = ctx.take_conflict() {
            return Err(conflict);
        }

        // Later waves: only the woken modules, via the position-ordered heap.
        while !self.next_wave.is_empty() {
            if passes >= max_passes as u64 {
                return Err(crate::SimError::CombinationalLoop {
                    cycle,
                    passes: max_passes,
                });
            }
            self.wave_seq += 1;
            stamp = self.wave_seq;
            for m in self.next_wave.drain(..) {
                self.queued[m] = stamp;
                self.heap.push(std::cmp::Reverse((self.position[m], m)));
            }
            ctx.begin_pass();
            passes += 1;
            while let Some(std::cmp::Reverse((pos, m))) = self.heap.pop() {
                let log_from = ctx.changed_len();
                modules[m].eval(cycle);
                evals += 1;
                if ctx.changed_len() == log_from {
                    continue;
                }
                self.changed_scratch.clear();
                ctx.changed_since(log_from, &mut self.changed_scratch);
                for &w in &self.changed_scratch {
                    let readers = self
                        .readers
                        .get(w as usize)
                        .map(|r| r.as_slice())
                        .unwrap_or(&[]);
                    for &r in readers.iter().chain(self.opaque.iter()) {
                        if self.queued[r] == stamp + 1 {
                            continue; // already queued for the next wave
                        }
                        if self.position[r] > pos {
                            // Not yet reached in this wave (pops are in
                            // position order): it will observe the new value
                            // when its turn comes. Queue it if it isn't
                            // queued already.
                            if self.queued[r] != stamp {
                                self.queued[r] = stamp;
                                self.heap.push(std::cmp::Reverse((self.position[r], r)));
                            }
                        } else {
                            // Already evaluated this wave (or is the module
                            // currently evaluating): genuine feedback, defer
                            // to the next wave.
                            self.queued[r] = stamp + 1;
                            self.next_wave.push(r);
                        }
                    }
                }
            }
            if let Some(conflict) = ctx.take_conflict() {
                return Err(conflict);
            }
        }
        Ok((passes, evals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Sensitivity;
    use crate::resources::ResourceUsage;
    use crate::signal::{SimCtx, Wire};

    struct Buf {
        input: Wire<u32>,
        output: Wire<u32>,
    }
    impl Module for Buf {
        fn name(&self) -> &str {
            "buf"
        }
        fn eval(&mut self, _c: u64) {
            self.output.drive(self.input.get());
        }
        fn commit(&mut self, _c: u64) {}
        fn resources(&self) -> ResourceUsage {
            ResourceUsage::ZERO
        }
        fn sensitivity(&self) -> Option<Sensitivity> {
            Some(Sensitivity::combinational(
                vec![self.input.id()],
                vec![self.output.id()],
            ))
        }
    }

    /// A chain registered in reverse order must still be scheduled
    /// producer-first, settling in one pass.
    #[test]
    fn anti_ordered_chain_settles_in_one_pass() {
        let ctx = SimCtx::new();
        let wires: Vec<Wire<u32>> = (0..6).map(|i| ctx.wire(&format!("w{i}"), 0)).collect();
        let mut modules: Vec<Box<dyn Module>> = Vec::new();
        // Stage k: wires[k] -> wires[k+1]; registered deepest-first.
        for k in (0..5).rev() {
            modules.push(Box::new(Buf {
                input: wires[k].clone(),
                output: wires[k + 1].clone(),
            }));
        }
        let mut sched = Schedule::build(&modules, ctx.wire_count());
        ctx.begin_pass();
        wires[0].drive(9);
        let (passes, evals) = sched.settle(&mut modules, &ctx, 0, 64).unwrap();
        assert_eq!(wires[5].get(), 9);
        assert_eq!(passes, 1, "topological order needs exactly one pass");
        assert_eq!(evals, 5, "each module evaluates exactly once");
    }

    #[test]
    fn change_wakes_only_readers() {
        let ctx = SimCtx::new();
        let a_in = ctx.wire("a_in", 0u32);
        let a_out = ctx.wire("a_out", 0u32);
        let b_in = ctx.wire("b_in", 0u32);
        let b_out = ctx.wire("b_out", 0u32);
        let mut modules: Vec<Box<dyn Module>> = vec![
            Box::new(Buf {
                input: a_in.clone(),
                output: a_out.clone(),
            }),
            Box::new(Buf {
                input: b_in.clone(),
                output: b_out.clone(),
            }),
        ];
        let mut sched = Schedule::build(&modules, ctx.wire_count());
        ctx.begin_pass();
        a_in.drive(1);
        let (passes, evals) = sched.settle(&mut modules, &ctx, 0, 64).unwrap();
        // Wave 0 always evaluates both, but a second wave is never needed.
        assert_eq!((passes, evals), (1, 2));
        assert_eq!(a_out.get(), 1);
        assert_eq!(b_out.get(), 0);
    }
}
