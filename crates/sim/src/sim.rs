//! The simulation executor: event-driven two-phase clock stepping.

use crate::error::SimError;
use crate::module::Module;
use crate::resources::ResourceUsage;
use crate::sched::{SchedStats, Schedule};
use crate::signal::SimCtx;
use crate::telemetry::ProbeRegistry;
use crate::SimResult;

/// Maximum delta passes per cycle before declaring a combinational loop.
/// Real designs here settle in 2–4 passes; 64 leaves generous headroom for
/// deep ready/valid chains while still catching true loops quickly.
const MAX_DELTA_PASSES: u32 = 64;

/// How the simulator evaluates modules within a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Static-order, dirty-set scheduling (see [`crate::sched`]). Modules
    /// without a [`Sensitivity`](crate::Sensitivity) declaration degrade
    /// gracefully to brute-force behaviour; fully declared acyclic designs
    /// settle in one pass per cycle.
    #[default]
    EventDriven,
    /// The brute-force reference: every delta pass evaluates every module
    /// until a full pass changes no wire. Kept for differential testing and
    /// benchmarking against the event-driven schedule.
    Naive,
}

/// Owns the module list and advances simulated time.
pub struct Simulator {
    ctx: SimCtx,
    modules: Vec<Box<dyn Module>>,
    cycle: u64,
    mode: SimMode,
    /// Built lazily on the first step, invalidated by [`Simulator::add`].
    schedule: Option<Schedule>,
    stats: SchedStats,
    /// Attached probe registry; `None` costs one branch per cycle.
    telemetry: Option<ProbeRegistry>,
}

impl Simulator {
    /// Creates an empty simulator with a fresh signal context, using the
    /// event-driven schedule.
    pub fn new() -> Self {
        Self::with_mode(SimMode::EventDriven)
    }

    /// Creates an empty simulator using the given evaluation mode.
    pub fn with_mode(mode: SimMode) -> Self {
        Simulator {
            ctx: SimCtx::new(),
            modules: Vec::new(),
            cycle: 0,
            mode,
            schedule: None,
            stats: SchedStats::default(),
            telemetry: None,
        }
    }

    /// Creates an empty simulator using the brute-force delta loop.
    pub fn naive() -> Self {
        Self::with_mode(SimMode::Naive)
    }

    /// The signal context; use it to create the design's wires.
    pub fn ctx(&self) -> &SimCtx {
        &self.ctx
    }

    /// Registers a module. Evaluation order is derived from the modules'
    /// [`Sensitivity`](crate::Sensitivity) declarations at the next step;
    /// convergence never depends on registration order.
    pub fn add(&mut self, module: Box<dyn Module>) {
        if let Some(reg) = self.telemetry.as_mut() {
            module.register_probes(reg);
        }
        self.modules.push(module);
        self.schedule = None;
    }

    /// Attaches a probe registry: every registered module declares its
    /// probes now (late-added modules register on [`Simulator::add`]) and
    /// is sampled once per cycle after the commit phase. Sampling sees
    /// settled post-commit values, so both [`SimMode`]s produce identical
    /// traces. With no registry attached the cost is one branch per cycle.
    pub fn attach_telemetry(&mut self, mut registry: ProbeRegistry) {
        for m in &self.modules {
            m.register_probes(&mut registry);
        }
        self.telemetry = Some(registry);
    }

    /// The attached probe registry, if any.
    pub fn telemetry(&self) -> Option<&ProbeRegistry> {
        self.telemetry.as_ref()
    }

    /// Mutable access to the attached probe registry (to export or clear).
    pub fn telemetry_mut(&mut self) -> Option<&mut ProbeRegistry> {
        self.telemetry.as_mut()
    }

    /// Detaches and returns the probe registry.
    pub fn take_telemetry(&mut self) -> Option<ProbeRegistry> {
        self.telemetry.take()
    }

    /// Current cycle number (cycles completed so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The active evaluation mode.
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// Evaluation-work counters accumulated since construction.
    pub fn sched_stats(&self) -> SchedStats {
        self.stats
    }

    /// Advances simulated time by one clock cycle.
    ///
    /// Runs delta passes until the design settles, then commits every module
    /// once.
    pub fn step(&mut self) -> SimResult<()> {
        self.ctx.set_cycle(self.cycle);
        match self.mode {
            SimMode::EventDriven => {
                if self.schedule.is_none() {
                    self.schedule = Some(Schedule::build(&self.modules, self.ctx.wire_count()));
                }
                let schedule = self.schedule.as_mut().expect("schedule just built");
                let (passes, evals) =
                    schedule.settle(&mut self.modules, &self.ctx, self.cycle, MAX_DELTA_PASSES)?;
                self.stats.passes += passes;
                self.stats.evals += evals;
            }
            SimMode::Naive => {
                let mut converged = false;
                for _pass in 0..MAX_DELTA_PASSES {
                    self.ctx.begin_pass();
                    self.stats.passes += 1;
                    for m in &mut self.modules {
                        m.eval(self.cycle);
                        self.stats.evals += 1;
                    }
                    if let Some(conflict) = self.ctx.take_conflict() {
                        return Err(conflict);
                    }
                    if self.ctx.changes() == 0 {
                        converged = true;
                        break;
                    }
                }
                if !converged {
                    return Err(SimError::CombinationalLoop {
                        cycle: self.cycle,
                        passes: MAX_DELTA_PASSES,
                    });
                }
            }
        }
        for m in &mut self.modules {
            m.commit(self.cycle);
        }
        // Probe sampling happens here — after every commit, in both
        // modes — so traces are mode-independent by construction.
        if let Some(reg) = self.telemetry.as_mut() {
            if reg.enabled() {
                for m in &self.modules {
                    m.sample_probes(self.cycle, reg);
                }
            }
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        Ok(())
    }

    /// Steps until `done` returns true, with a watchdog budget.
    pub fn run_until<F>(&mut self, budget: u64, what: &str, mut done: F) -> SimResult<u64>
    where
        F: FnMut(&Self) -> bool,
    {
        let start = self.cycle;
        while !done(self) {
            if self.cycle - start >= budget {
                return Err(SimError::Watchdog {
                    budget,
                    waiting_for: what.to_string(),
                });
            }
            self.step()?;
        }
        Ok(self.cycle - start)
    }

    /// Steps a fixed number of cycles.
    pub fn run(&mut self, cycles: u64) -> SimResult<()> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// Sums the resource report of every registered module.
    pub fn resources(&self) -> ResourceUsage {
        self.modules.iter().map(|m| m.resources()).sum()
    }

    /// Immutable access to the registered modules (for reporting).
    pub fn modules(&self) -> &[Box<dyn Module>] {
        &self.modules
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{Reg, Wire};

    /// A register stage: out <= in on each clock edge.
    struct Pipe {
        input: Wire<u32>,
        output: Wire<u32>,
        reg: Reg<u32>,
    }

    impl Module for Pipe {
        fn name(&self) -> &str {
            "pipe"
        }
        fn eval(&mut self, _c: u64) {
            self.reg.set(self.input.get());
            self.output.drive(self.reg.q());
        }
        fn commit(&mut self, _c: u64) {
            self.reg.tick();
        }
        fn resources(&self) -> ResourceUsage {
            ResourceUsage::regs(32)
        }
    }

    /// Combinational adder: sum = a + b (no state).
    struct Adder {
        a: Wire<u32>,
        b: Wire<u32>,
        sum: Wire<u32>,
    }

    impl Module for Adder {
        fn name(&self) -> &str {
            "adder"
        }
        fn eval(&mut self, _c: u64) {
            self.sum.drive(self.a.get().wrapping_add(self.b.get()));
        }
        fn commit(&mut self, _c: u64) {}
    }

    #[test]
    fn register_stage_delays_by_one_cycle() {
        let mut sim = Simulator::new();
        let input = sim.ctx().wire("in", 0u32);
        let output = sim.ctx().wire("out", 0u32);
        sim.add(Box::new(Pipe {
            input: input.clone(),
            output: output.clone(),
            reg: Reg::new(0),
        }));

        // Drive 7 before stepping; after one edge the output shows it.
        sim.ctx().begin_pass();
        input.drive(7);
        sim.step().unwrap();
        assert_eq!(
            output.get(),
            0,
            "output reflects pre-edge register value during cycle 0"
        );
        sim.step().unwrap();
        assert_eq!(output.get(), 7);
    }

    #[test]
    fn combinational_chain_settles_regardless_of_order() {
        // adder2 depends on adder1's output; register adder2 *first* so the
        // delta mechanism (not registration order) must produce settling.
        let mut sim = Simulator::new();
        let a = sim.ctx().wire("a", 1u32);
        let b = sim.ctx().wire("b", 2u32);
        let mid = sim.ctx().wire("mid", 0u32);
        let c = sim.ctx().wire("c", 10u32);
        let out = sim.ctx().wire("out", 0u32);
        sim.add(Box::new(Adder {
            a: mid.clone(),
            b: c.clone(),
            sum: out.clone(),
        }));
        sim.add(Box::new(Adder {
            a: a.clone(),
            b: b.clone(),
            sum: mid.clone(),
        }));
        sim.step().unwrap();
        assert_eq!(out.get(), 13);
    }

    /// A deliberately pathological module: out = !in wired back to itself.
    struct Inverter {
        x: Wire<bool>,
    }
    impl Module for Inverter {
        fn name(&self) -> &str {
            "inv"
        }
        fn eval(&mut self, _c: u64) {
            let v = self.x.get();
            self.x.drive(!v);
        }
        fn commit(&mut self, _c: u64) {}
    }

    #[test]
    fn combinational_loop_is_detected() {
        let mut sim = Simulator::new();
        let x = sim.ctx().wire("x", false);
        sim.add(Box::new(Inverter { x }));
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::CombinationalLoop { .. }));
    }

    #[test]
    fn run_until_with_watchdog() {
        let mut sim = Simulator::new();
        let input = sim.ctx().wire("in", 0u32);
        let output = sim.ctx().wire("out", 0u32);
        sim.add(Box::new(Pipe {
            input: input.clone(),
            output: output.clone(),
            reg: Reg::new(0),
        }));
        sim.ctx().begin_pass();
        input.drive(3);
        let cycles = sim.run_until(10, "out==3", |_| output.get() == 3);
        assert_eq!(cycles.unwrap(), 2);

        // Now an unreachable condition trips the watchdog.
        let err = sim
            .run_until(5, "out==99", |_| output.get() == 99)
            .unwrap_err();
        assert!(matches!(err, SimError::Watchdog { budget: 5, .. }));
    }

    #[test]
    fn resources_sum_over_modules() {
        let mut sim = Simulator::new();
        let w = sim.ctx().wire("w", 0u32);
        for _ in 0..3 {
            sim.add(Box::new(Pipe {
                input: w.clone(),
                output: sim.ctx().wire("o", 0u32),
                reg: Reg::new(0),
            }));
        }
        assert_eq!(sim.resources().registers, 96);
    }

    #[test]
    fn fixed_run_advances_cycle_counter() {
        let mut sim = Simulator::new();
        sim.run(17).unwrap();
        assert_eq!(sim.cycle(), 17);
    }

    /// A counter module that exposes its register through a probe.
    struct Counting {
        reg: Reg<u32>,
    }
    impl Module for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn eval(&mut self, _c: u64) {
            self.reg.set(self.reg.q().wrapping_add(1));
        }
        fn commit(&mut self, _c: u64) {
            self.reg.tick();
        }
        fn register_probes(&self, reg: &mut ProbeRegistry) {
            reg.register("counting.value", crate::telemetry::ProbeKind::Vector(32));
        }
        fn sample_probes(&self, cycle: u64, reg: &mut ProbeRegistry) {
            reg.sample_path(cycle, "counting.value", u64::from(self.reg.q()));
        }
    }

    #[test]
    fn telemetry_sampling_is_identical_across_modes() {
        let run = |mode: SimMode| -> String {
            let mut sim = Simulator::with_mode(mode);
            sim.add(Box::new(Counting { reg: Reg::new(0) }));
            sim.attach_telemetry(ProbeRegistry::new(Default::default()));
            sim.run(8).unwrap();
            sim.telemetry().expect("attached").export_vcd("t")
        };
        let event_driven = run(SimMode::EventDriven);
        let naive = run(SimMode::Naive);
        assert_eq!(event_driven, naive);
        crate::telemetry::vcd_self_check(&event_driven).expect("valid VCD");
    }

    #[test]
    fn late_added_modules_register_probes() {
        let mut sim = Simulator::new();
        sim.attach_telemetry(ProbeRegistry::new(Default::default()));
        sim.add(Box::new(Counting { reg: Reg::new(0) }));
        sim.run(3).unwrap();
        let reg = sim.telemetry().expect("attached");
        assert_eq!(reg.paths(), vec!["counting.value"]);
        // Post-commit sampling sees the committed value: 1 after cycle 0.
        assert_eq!(reg.events_for("counting.value")[0], (0, 1));
    }
}
