//! Sharding independent simulations across worker threads.
//!
//! A [`Simulator`](crate::Simulator) is deliberately single-threaded (wires
//! are `Rc`/`Cell` based), but distinct simulations share nothing, so a
//! *batch* of runs parallelises perfectly: each worker thread constructs and
//! drives its own simulator from a `Send` job description. [`run_batch`] is
//! the primitive — job in, result out, results in job order regardless of
//! which worker finished first, so batched runs are reproducible
//! run-to-run and against a serial execution.
//!
//! Workers pull jobs from a shared queue (work stealing by contention), so
//! unequal job lengths balance automatically. With `threads == 1` the batch
//! runs inline on the caller's thread with no synchronisation at all.

use std::sync::Mutex;

/// Runs every job, using up to `threads` worker threads, and returns the
/// results in job order.
///
/// `run` receives each job by value and typically builds a fresh
/// [`Simulator`](crate::Simulator) for it; the closure is shared across
/// workers, so it must be `Sync` (captured state is only read).
///
/// A panic inside `run` propagates to the caller once the batch unwinds —
/// no job result is silently dropped.
///
/// ```
/// use smache_sim::run_batch;
///
/// // Square numbers "in parallel"; results come back in input order.
/// let out = run_batch((0..8u64).collect(), 4, |x| x * x);
/// assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_batch<T, R, F>(jobs: Vec<T>, threads: usize, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 {
        return jobs.into_iter().map(run).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    // Popping from the back is cheapest; jobs were pushed in order, so the
    // queue is reversed to hand out low indices first (earlier jobs start
    // earlier, which keeps latency profiles stable).
    let mut work: Vec<(usize, T)> = jobs.into_iter().enumerate().collect();
    work.reverse();
    let queue = Mutex::new(work);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let next = queue.lock().expect("batch queue poisoned").pop();
                let Some((idx, job)) = next else { break };
                let result = run(job);
                slots.lock().expect("batch slots poisoned")[idx] = Some(result);
            });
        }
    });

    slots
        .into_inner()
        .expect("batch slots poisoned")
        .into_iter()
        .map(|s| s.expect("every job produced a result"))
        .collect()
}

/// Runs work units that each resolve *several* indexed results and
/// scatters them into one dense, `total`-sized result vector.
///
/// This is the shape of a lane-blocked batch: a unit may be a single lane
/// or a block of lanes replayed together, and either way it reports
/// `(lane index, result)` pairs. Units shard across the pool exactly like
/// [`run_batch`] jobs; the scatter restores submission order, so the
/// output is independent of `threads` and of how lanes were blocked.
///
/// Every index in `0..total` must be resolved exactly once across all
/// units — a missing or duplicated index is a caller bug and panics.
pub fn run_scatter<T, R, F>(units: Vec<T>, threads: usize, total: usize, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Vec<(usize, R)> + Sync,
{
    let resolved = run_batch(units, threads, run);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    for (idx, result) in resolved.into_iter().flatten() {
        assert!(
            slots[idx].replace(result).is_none(),
            "scatter index {idx} resolved twice"
        );
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("scatter index {i} never resolved")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Reg;
    use crate::{Module, ResourceUsage, Simulator};

    #[test]
    fn scatter_restores_order_across_uneven_units() {
        // Units of very different sizes, indices deliberately shuffled.
        let units: Vec<Vec<usize>> = vec![vec![3], vec![0, 5, 1], vec![4, 2]];
        let out = run_scatter(units, 3, 6, |unit| {
            unit.into_iter().map(|i| (i, i * 10)).collect()
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn scatter_rejects_duplicate_indices() {
        run_scatter(vec![vec![0usize, 0]], 1, 1, |unit| {
            unit.into_iter().map(|i| (i, ())).collect()
        });
    }

    #[test]
    #[should_panic(expected = "never resolved")]
    fn scatter_rejects_missing_indices() {
        run_scatter(vec![vec![0usize]], 1, 2, |unit| {
            unit.into_iter().map(|i| (i, ())).collect()
        });
    }

    #[test]
    fn results_preserve_job_order() {
        let out = run_batch((0..40u64).collect(), 7, |x| x + 100);
        assert_eq!(out, (100..140).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_serial_paths() {
        let empty: Vec<u32> = run_batch(Vec::<u32>::new(), 4, |x| x);
        assert!(empty.is_empty());
        let serial = run_batch(vec![1, 2, 3], 1, |x| x * 2);
        assert_eq!(serial, vec![2, 4, 6]);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let out = run_batch(vec![5u32], 0, |x| x);
        assert_eq!(out, vec![5]);
    }

    /// The whole point: non-`Send` simulators built *inside* the workers.
    #[test]
    fn each_worker_builds_its_own_simulator() {
        struct Counter {
            reg: Reg<u64>,
        }
        impl Module for Counter {
            fn name(&self) -> &str {
                "counter"
            }
            fn eval(&mut self, _c: u64) {
                self.reg.set(self.reg.q() + 1);
            }
            fn commit(&mut self, _c: u64) {
                self.reg.tick();
            }
            fn resources(&self) -> ResourceUsage {
                ResourceUsage::ZERO
            }
        }

        let cycles: Vec<u64> = vec![3, 17, 5, 29];
        let out = run_batch(cycles.clone(), 4, |n| {
            let mut sim = Simulator::new();
            sim.add(Box::new(Counter { reg: Reg::new(0) }));
            sim.run(n).expect("runs");
            sim.cycle()
        });
        assert_eq!(out, cycles);
    }

    #[test]
    fn batch_and_serial_agree() {
        let jobs: Vec<u64> = (0..16).collect();
        let serial = run_batch(jobs.clone(), 1, |x| x.wrapping_mul(0x9E37_79B9));
        let batched = run_batch(jobs, 6, |x| x.wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, batched);
    }
}
