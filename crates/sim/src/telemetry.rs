//! First-class observability: typed probes, profiling counters, and
//! industry-format trace exporters.
//!
//! The [`trace`](crate::trace) module's [`Tracer`](crate::Tracer) records
//! flat string-keyed change events — enough for ad-hoc debugging. This
//! module is the structured layer built on the same idea:
//!
//! * [`ProbeRegistry`] — hierarchical, *typed* probes ([`ProbeKind::Bit`],
//!   [`ProbeKind::Vector`], [`ProbeKind::State`]) registered once and
//!   sampled every cycle in the commit phase. Because sampling happens
//!   after evaluation has converged, the event-driven and naive scheduler
//!   modes produce identical traces by construction.
//! * [`CounterRegistry`] — named `u64` counters and occupancy
//!   [`Histogram`]s owned by the simulation thread (lock-free in spirit:
//!   plain cells, snapshotted per run into a [`TelemetrySnapshot`]).
//! * Exporters — a real VCD writer ([`ProbeRegistry::export_vcd`],
//!   IEEE 1364 §18, viewable in GTKWave) and a Chrome `trace_event` JSON
//!   writer ([`ProbeRegistry::export_chrome`], viewable in
//!   `chrome://tracing` / Perfetto), each with a structural self-check
//!   ([`vcd_self_check`], [`chrome_self_check`]).
//! * [`TelemetrySnapshot::render_analysis`] — the bottleneck report: top-k
//!   stall contributors and per-FSM state-residency tables.
//!
//! # Probe naming scheme
//!
//! Probe paths are `.`-separated hierarchies (`ctrl.phase`,
//! `dram.row_open.3`); the last segment is the VCD variable name, the
//! leading segments become nested `$scope`s. Counters follow the
//! conventions `stall.<cause>` (stall attribution, in cycles),
//! `residency.<fsm>.<state>` (FSM state residency, in cycles — the states
//! of one FSM sum to the cycles that FSM existed) and `<component>.<stat>`
//! for everything else. Histograms are named `occupancy.<queue>`.
//!
//! # Overhead contract
//!
//! A design that does not attach telemetry pays exactly one
//! `Option::is_some` check per cycle; cycle counts, outputs and seeded
//! chaos schedules are bit-identical with and without telemetry attached.
//! See `docs/OBSERVABILITY.md` for the full contract and the tests
//! enforcing it.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Configuration shared by the telemetry stores.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Maximum number of probe change events retained. The event store is
    /// a ring: on overflow the oldest event is evicted, its value is kept
    /// as the probe's baseline, and the drop is counted (never silent).
    pub capacity: usize,
    /// Probe samples before this cycle are ignored (counters still run).
    pub start_cycle: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            capacity: 1 << 16,
            start_cycle: 0,
        }
    }
}

/// The declared shape of a probe's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// A single-bit signal (handshakes, pulses, stall lines).
    Bit,
    /// A multi-bit bus of the given width (counters, addresses, indices).
    Vector(u32),
    /// An FSM state register; values index into the label list.
    State(&'static [&'static str]),
}

impl ProbeKind {
    /// Bit width of the probe in exported waveforms.
    pub fn width(&self) -> u32 {
        match self {
            ProbeKind::Bit => 1,
            ProbeKind::Vector(w) => (*w).max(1),
            ProbeKind::State(labels) => {
                let n = labels.len().max(2) as u64;
                (64 - (n - 1).leading_zeros()).max(1)
            }
        }
    }

    /// The state label for `value`, if this is a [`ProbeKind::State`]
    /// probe and the value is in range.
    pub fn label(&self, value: u64) -> Option<&'static str> {
        match self {
            ProbeKind::State(labels) => labels.get(value as usize).copied(),
            _ => None,
        }
    }
}

/// Handle to a registered probe (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeId(usize);

/// One recorded change event: `probe` took `value` at `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSample {
    /// Cycle at which the probe changed.
    pub cycle: u64,
    /// The probe that changed.
    pub probe: ProbeId,
    /// The new value.
    pub value: u64,
}

#[derive(Debug, Clone)]
struct ProbeDef {
    path: String,
    kind: ProbeKind,
}

/// Hierarchical registry of typed probes with an on-change event store.
///
/// Modules register probes once (at elaboration) and sample them each
/// cycle in the commit phase. Only changes are recorded. The store is a
/// bounded ring: overflow evicts the oldest event but remembers the
/// evicted value as the probe's *baseline*, so exported waveforms keep
/// correct initial values, and the dropped count is reported in every
/// export format.
pub struct ProbeRegistry {
    config: TelemetryConfig,
    probes: Vec<ProbeDef>,
    by_path: BTreeMap<String, usize>,
    events: VecDeque<TraceSample>,
    last: Vec<Option<u64>>,
    baseline: Vec<Option<u64>>,
    dropped: u64,
    enabled: bool,
    /// Highest cycle ever sampled (closes open spans in exports).
    latest: u64,
}

impl ProbeRegistry {
    /// Creates an enabled registry.
    pub fn new(config: TelemetryConfig) -> Self {
        ProbeRegistry {
            config,
            probes: Vec::new(),
            by_path: BTreeMap::new(),
            events: VecDeque::new(),
            last: Vec::new(),
            baseline: Vec::new(),
            dropped: 0,
            enabled: true,
            latest: 0,
        }
    }

    /// The fast gate modules check once per cycle before sampling.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Pauses (`false`) or resumes (`true`) sampling.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Registers a probe (idempotent: re-registering a path returns the
    /// existing id; the first registration's kind wins).
    pub fn register(&mut self, path: &str, kind: ProbeKind) -> ProbeId {
        if let Some(&i) = self.by_path.get(path) {
            return ProbeId(i);
        }
        let i = self.probes.len();
        self.probes.push(ProbeDef {
            path: path.to_string(),
            kind,
        });
        self.by_path.insert(path.to_string(), i);
        self.last.push(None);
        self.baseline.push(None);
        ProbeId(i)
    }

    /// Number of registered probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// All registered probe paths, in registration order.
    pub fn paths(&self) -> Vec<&str> {
        self.probes.iter().map(|p| p.path.as_str()).collect()
    }

    /// Samples a probe by id; records an event only on change.
    pub fn sample(&mut self, cycle: u64, probe: ProbeId, value: u64) {
        if !self.enabled || cycle < self.config.start_cycle {
            return;
        }
        self.latest = self.latest.max(cycle);
        let i = probe.0;
        if self.last[i] == Some(value) {
            return;
        }
        self.last[i] = Some(value);
        if self.events.len() >= self.config.capacity.max(1) {
            if let Some(old) = self.events.pop_front() {
                self.baseline[old.probe.0] = Some(old.value);
                self.dropped += 1;
            }
        }
        self.events.push_back(TraceSample {
            cycle,
            probe,
            value,
        });
    }

    /// Samples a probe by path, auto-registering unknown paths as 64-bit
    /// vectors (convenient for ad-hoc probes).
    pub fn sample_path(&mut self, cycle: u64, path: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let id = match self.by_path.get(path) {
            Some(&i) => ProbeId(i),
            None => self.register(path, ProbeKind::Vector(64)),
        };
        self.sample(cycle, id, value);
    }

    /// Retained change events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceSample> {
        self.events.iter()
    }

    /// `(cycle, value)` change pairs for one probe path.
    pub fn events_for(&self, path: &str) -> Vec<(u64, u64)> {
        match self.by_path.get(path) {
            Some(&i) => self
                .events
                .iter()
                .filter(|e| e.probe.0 == i)
                .map(|e| (e.cycle, e.value))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Events evicted by the ring capacity so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears events, baselines and last-values while keeping the probe
    /// definitions — called between runs.
    pub fn clear(&mut self) {
        self.events.clear();
        self.last.iter_mut().for_each(|v| *v = None);
        self.baseline.iter_mut().for_each(|v| *v = None);
        self.dropped = 0;
        self.latest = 0;
    }

    /// Short printable VCD identifier for probe `i` (chars `'!'..='~'`).
    fn ident(i: usize) -> String {
        let mut n = i;
        let mut s = String::new();
        loop {
            s.push((b'!' + (n % 94) as u8) as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    }

    /// Renders a Value Change Dump (IEEE 1364 §18). Probe paths become
    /// nested `$scope`s; every probe dumps at its declared width; the
    /// `$dumpvars` block carries baselines (evicted or unknown-yet values
    /// render as `x`). One VCD timestep equals one clock cycle.
    pub fn export_vcd(&self, top: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date smache telemetry $end");
        let _ = writeln!(out, "$version smache-sim probe registry $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "$comment {} earlier events dropped by ring capacity $end",
                self.dropped
            );
        }
        let _ = writeln!(out, "$scope module {top} $end");
        self.emit_scope_tree(&mut out, 1);
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        // Initial values: baselines where known, x otherwise.
        let _ = writeln!(out, "$dumpvars");
        for (i, p) in self.probes.iter().enumerate() {
            let id = Self::ident(i);
            match self.baseline[i] {
                Some(v) => {
                    if p.kind.width() == 1 {
                        let _ = writeln!(out, "{}{}", v & 1, id);
                    } else {
                        let _ = writeln!(out, "b{v:b} {id}");
                    }
                }
                None => {
                    if p.kind.width() == 1 {
                        let _ = writeln!(out, "x{id}");
                    } else {
                        let _ = writeln!(out, "bx {id}");
                    }
                }
            }
        }
        let _ = writeln!(out, "$end");

        let mut current: Option<u64> = None;
        for e in &self.events {
            if current != Some(e.cycle) {
                let _ = writeln!(out, "#{}", e.cycle);
                current = Some(e.cycle);
            }
            let id = Self::ident(e.probe.0);
            if self.probes[e.probe.0].kind.width() == 1 {
                let _ = writeln!(out, "{}{}", e.value & 1, id);
            } else {
                let _ = writeln!(out, "b{:b} {}", e.value, id);
            }
        }
        out
    }

    /// Emits nested `$scope`/`$var` declarations grouped by path segments.
    fn emit_scope_tree(&self, out: &mut String, depth: usize) {
        // Group probes by their first path segment; leaves (single-segment
        // paths) become $var lines, groups recurse as $scope blocks.
        #[derive(Default)]
        struct Level {
            vars: Vec<(String, usize)>,
            subs: BTreeMap<String, Vec<(Vec<String>, usize)>>,
        }
        fn build(paths: Vec<(Vec<String>, usize)>) -> Level {
            let mut level = Level::default();
            for (mut segs, idx) in paths {
                if segs.len() == 1 {
                    level.vars.push((segs.pop().expect("one segment"), idx));
                } else {
                    let head = segs.remove(0);
                    level.subs.entry(head).or_default().push((segs, idx));
                }
            }
            level
        }
        fn emit(reg: &ProbeRegistry, level: Level, out: &mut String, depth: usize) {
            let pad = "  ".repeat(depth);
            for (name, idx) in level.vars {
                let width = reg.probes[idx].kind.width();
                let _ = writeln!(
                    out,
                    "{pad}$var wire {width} {} {name} $end",
                    ProbeRegistry::ident(idx)
                );
            }
            for (name, paths) in level.subs {
                let _ = writeln!(out, "{pad}$scope module {name} $end");
                emit(reg, build(paths), out, depth + 1);
                let _ = writeln!(out, "{pad}$upscope $end");
            }
        }
        let paths: Vec<(Vec<String>, usize)> = self
            .probes
            .iter()
            .enumerate()
            .map(|(i, p)| (p.path.split('.').map(str::to_string).collect(), i))
            .collect();
        emit(self, build(paths), out, depth);
    }

    /// Renders a Chrome `trace_event` JSON document (open it in
    /// `chrome://tracing` or <https://ui.perfetto.dev>). One trace `ts`
    /// unit equals one clock cycle.
    ///
    /// * [`ProbeKind::State`] probes become complete duration slices
    ///   (`"ph":"X"`), one slice per state interval, on a thread named
    ///   after the probe — FSM activity reads as a timeline.
    /// * [`ProbeKind::Bit`] probes whose path contains `stall` become
    ///   async spans (`"ph":"b"`/`"ph":"e"`), so stalls overlay the FSM
    ///   slices.
    /// * Everything else becomes counter events (`"ph":"C"`).
    pub fn export_chrome(&self, process: &str) -> String {
        let mut ev: Vec<String> = Vec::new();
        ev.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(process)
        ));
        for (i, p) in self.probes.iter().enumerate() {
            ev.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{i},\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&p.path)
            ));
        }
        if self.dropped > 0 {
            ev.push(format!(
                "{{\"ph\":\"i\",\"name\":\"dropped {} events\",\"pid\":0,\"tid\":0,\"ts\":0,\"s\":\"g\"}}",
                self.dropped
            ));
        }
        let end = self.latest + 1;
        for (i, p) in self.probes.iter().enumerate() {
            let changes: Vec<(u64, u64)> = self
                .events
                .iter()
                .filter(|e| e.probe.0 == i)
                .map(|e| (e.cycle, e.value))
                .collect();
            match p.kind {
                ProbeKind::State(_) => {
                    for (j, &(start, value)) in changes.iter().enumerate() {
                        let stop = changes.get(j + 1).map(|c| c.0).unwrap_or(end);
                        let name = p
                            .kind
                            .label(value)
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("s{value}"));
                        ev.push(format!(
                            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"fsm\",\"pid\":0,\"tid\":{i},\"ts\":{start},\"dur\":{}}}",
                            json_escape(&name),
                            stop.saturating_sub(start).max(1)
                        ));
                    }
                }
                ProbeKind::Bit if p.path.contains("stall") => {
                    let mut open = false;
                    for &(cycle, value) in &changes {
                        if value != 0 && !open {
                            open = true;
                            ev.push(format!(
                                "{{\"ph\":\"b\",\"name\":\"{}\",\"cat\":\"stall\",\"id\":{i},\"pid\":0,\"tid\":{i},\"ts\":{cycle}}}",
                                json_escape(&p.path)
                            ));
                        } else if value == 0 && open {
                            open = false;
                            ev.push(format!(
                                "{{\"ph\":\"e\",\"name\":\"{}\",\"cat\":\"stall\",\"id\":{i},\"pid\":0,\"tid\":{i},\"ts\":{cycle}}}",
                                json_escape(&p.path)
                            ));
                        }
                    }
                    if open {
                        ev.push(format!(
                            "{{\"ph\":\"e\",\"name\":\"{}\",\"cat\":\"stall\",\"id\":{i},\"pid\":0,\"tid\":{i},\"ts\":{end}}}",
                            json_escape(&p.path)
                        ));
                    }
                }
                _ => {
                    for &(cycle, value) in &changes {
                        ev.push(format!(
                            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":0,\"tid\":{i},\"ts\":{cycle},\"args\":{{\"v\":{value}}}}}",
                            json_escape(&p.path)
                        ));
                    }
                }
            }
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        out.push_str(&ev.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// Renders the trace as an aligned change list (the `ascii` trace
    /// format), ending with the dropped-event count when non-zero.
    pub fn export_ascii(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let p = &self.probes[e.probe.0];
            match p.kind.label(e.value) {
                Some(label) => {
                    let _ = writeln!(out, "@{:>8} {:<28} = {label}", e.cycle, p.path);
                }
                None => {
                    let _ = writeln!(out, "@{:>8} {:<28} = {:#x}", e.cycle, p.path, e.value);
                }
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} earlier events dropped)", self.dropped);
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Structurally validates a VCD document produced by
/// [`ProbeRegistry::export_vcd`] (or any simple VCD): declarations close
/// with `$enddefinitions`, at least one `$var` exists, timestamps strictly
/// increase, and every value change references a declared identifier.
pub fn vcd_self_check(vcd: &str) -> Result<(), String> {
    let mut idents: Vec<String> = Vec::new();
    let mut in_defs = true;
    let mut saw_timescale = false;
    let mut last_ts: Option<u64> = None;
    for (ln, raw) in vcd.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if in_defs {
            if line.starts_with("$timescale") {
                saw_timescale = true;
            } else if line.starts_with("$var") {
                let parts: Vec<&str> = line.split_whitespace().collect();
                // $var wire <width> <ident> <name> $end
                if parts.len() < 6 || parts.last() != Some(&"$end") {
                    return Err(format!("line {}: malformed $var", ln + 1));
                }
                parts[2]
                    .parse::<u32>()
                    .map_err(|_| format!("line {}: bad $var width", ln + 1))?;
                idents.push(parts[3].to_string());
            } else if line.starts_with("$enddefinitions") {
                in_defs = false;
            }
            continue;
        }
        if let Some(ts) = line.strip_prefix('#') {
            let ts: u64 = ts
                .parse()
                .map_err(|_| format!("line {}: bad timestamp", ln + 1))?;
            if let Some(prev) = last_ts {
                if ts <= prev {
                    return Err(format!(
                        "line {}: timestamp #{ts} not after #{prev}",
                        ln + 1
                    ));
                }
            }
            last_ts = Some(ts);
        } else if let Some(rest) = line.strip_prefix('b') {
            let mut parts = rest.split_whitespace();
            let value = parts.next().unwrap_or("");
            let id = parts.next().unwrap_or("");
            if value.is_empty() || !value.chars().all(|c| matches!(c, '0' | '1' | 'x' | 'z')) {
                return Err(format!("line {}: bad vector value", ln + 1));
            }
            if !idents.iter().any(|k| k == id) {
                return Err(format!("line {}: unknown identifier `{id}`", ln + 1));
            }
        } else if let Some(c) = line.chars().next() {
            if matches!(c, '0' | '1' | 'x' | 'z') {
                let id = &line[1..];
                if !idents.iter().any(|k| k == id) {
                    return Err(format!("line {}: unknown identifier `{id}`", ln + 1));
                }
            } else if !line.starts_with('$') {
                return Err(format!("line {}: unrecognised `{line}`", ln + 1));
            }
        }
    }
    if in_defs {
        return Err("no $enddefinitions section".into());
    }
    if !saw_timescale {
        return Err("no $timescale declaration".into());
    }
    if idents.is_empty() {
        return Err("no $var declarations".into());
    }
    Ok(())
}

/// Validates that `json` is a single well-formed JSON value containing a
/// `traceEvents` key — the shape Chrome's trace viewer expects. The
/// parser is a minimal recursive-descent well-formedness checker (this
/// workspace deliberately carries no serde).
pub fn chrome_self_check(json: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("byte {}: expected `{}`", self.i, c as char))
            }
        }
        fn lit(&mut self, s: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(s.as_bytes()) {
                self.i += s.len();
                Ok(())
            } else {
                Err(format!("byte {}: expected `{s}`", self.i))
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => {
                        self.i += 1; // skip escaped char (\uXXXX digits are plain chars)
                    }
                    _ => {}
                }
            }
            Err("unterminated string".into())
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.i += 1;
            }
            if self.i == start {
                Err(format!("byte {start}: expected number"))
            } else {
                Ok(())
            }
        }
        fn value(&mut self) -> Result<(), String> {
            self.ws();
            match self.peek() {
                Some(b'{') => {
                    self.i += 1;
                    self.ws();
                    if self.peek() == Some(b'}') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.ws();
                        self.string()?;
                        self.ws();
                        self.eat(b':')?;
                        self.value()?;
                        self.ws();
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("byte {}: expected , or }}", self.i)),
                        }
                    }
                }
                Some(b'[') => {
                    self.i += 1;
                    self.ws();
                    if self.peek() == Some(b']') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.value()?;
                        self.ws();
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("byte {}: expected , or ]", self.i)),
                        }
                    }
                }
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(_) => self.number(),
                None => Err("unexpected end of input".into()),
            }
        }
    }
    let mut p = P {
        b: json.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("byte {}: trailing data after JSON value", p.i));
    }
    if !json.contains("\"traceEvents\"") {
        return Err("missing traceEvents key".into());
    }
    Ok(())
}

/// Number of histogram buckets: exact 0, powers of two up to `2^16`, and
/// one overflow bucket.
const HIST_BUCKETS: usize = 18;

/// A fixed power-of-two bucketed occupancy histogram.
///
/// Bucket 0 counts exact zeros; bucket `i` (1..=16) counts values in
/// `[2^(i-1), 2^i)`; the last bucket counts everything at or above
/// `2^16`. This covers FIFO depths and queue lengths with a handful of
/// `u64` cells and no allocation on the sampling path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation of `value`.
    pub fn observe(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Human-readable label of bucket `i` (`"0"`, `"1"`, `"2-3"`, ...).
    pub fn bucket_label(i: usize) -> String {
        match i {
            0 => "0".to_string(),
            1 => "1".to_string(),
            _ if i < HIST_BUCKETS - 1 => format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1),
            _ => format!("{}+", 1u64 << (HIST_BUCKETS - 2)),
        }
    }

    /// Non-empty buckets as `(label, count)` pairs.
    pub fn non_empty(&self) -> Vec<(String, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_label(i), c))
            .collect()
    }

    /// Resets all buckets.
    pub fn clear(&mut self) {
        self.buckets = [0; HIST_BUCKETS];
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Named `u64` profiling counters and occupancy histograms.
///
/// Plain cells owned by the simulation thread — incrementing is an array
/// write, no locks, no atomics. A [`TelemetrySnapshot`] is taken per run
/// and travels with the run report.
#[derive(Debug, Default)]
pub struct CounterRegistry {
    counters: Vec<(String, u64)>,
    counter_ix: BTreeMap<String, usize>,
    hists: Vec<(String, Histogram)>,
    hist_ix: BTreeMap<String, usize>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_ix.get(name) {
            return CounterId(i);
        }
        let i = self.counters.len();
        self.counters.push((name.to_string(), 0));
        self.counter_ix.insert(name.to_string(), i);
        CounterId(i)
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Overwrites a counter (for end-of-run copies of external stats).
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.counters[id.0].1 = value;
    }

    /// Reads a counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counter_ix.get(name).map(|&i| self.counters[i].1)
    }

    /// Registers (or finds) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(&i) = self.hist_ix.get(name) {
            return HistogramId(i);
        }
        let i = self.hists.len();
        self.hists.push((name.to_string(), Histogram::default()));
        self.hist_ix.insert(name.to_string(), i);
        HistogramId(i)
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.hists[id.0].1.observe(value);
    }

    /// Zeroes every counter and histogram, keeping registrations.
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| c.1 = 0);
        self.hists.iter_mut().for_each(|h| h.1.clear());
    }

    /// Copies the current values into an owned snapshot (sorted by name
    /// for stable output).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters: Vec<(String, u64)> = self.counters.clone();
        counters.sort();
        let mut histograms: Vec<(String, Vec<(String, u64)>)> = self
            .hists
            .iter()
            .map(|(name, h)| (name.clone(), h.non_empty()))
            .collect();
        histograms.sort();
        TelemetrySnapshot {
            counters,
            histograms,
        }
    }
}

/// A per-run copy of every telemetry counter and histogram — the
/// `telemetry` section of a run report and of `BENCH_*.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, non-empty (bucket label, count) pairs)`, sorted by name.
    pub histograms: Vec<(String, Vec<(String, u64)>)>,
}

impl TelemetrySnapshot {
    /// Reads one counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Counters under `prefix.` with the prefix stripped.
    pub fn with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let p = format!("{prefix}.");
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(&p))
            .map(|(n, v)| (n[p.len()..].to_string(), *v))
            .collect()
    }

    /// The top-`k` stall contributors (`stall.*` counters, largest first).
    pub fn top_stalls(&self, k: usize) -> Vec<(String, u64)> {
        let mut stalls = self.with_prefix("stall");
        stalls.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        stalls.truncate(k);
        stalls
    }

    /// State residency of one FSM: `(state, cycles)` pairs from the
    /// `residency.<fsm>.<state>` counters, in name order. For a correctly
    /// instrumented FSM the values sum to the run's total cycles.
    pub fn residency(&self, fsm: &str) -> Vec<(String, u64)> {
        self.with_prefix(&format!("residency.{fsm}"))
    }

    /// Names of every FSM with residency counters.
    pub fn fsms(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .counters
            .iter()
            .filter_map(|(n, _)| n.strip_prefix("residency."))
            .filter_map(|rest| rest.split('.').next())
            .map(str::to_string)
            .collect();
        names.dedup();
        names.sort();
        names.dedup();
        names
    }

    /// Renders the bottleneck report: top-`k` stall contributors against
    /// `total_cycles`, per-FSM state-residency tables (each row shows the
    /// fraction of that FSM's cycles), and any non-empty histograms.
    pub fn render_analysis(&self, total_cycles: u64, top_k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "bottleneck report ({total_cycles} cycles)");
        let stalls = self.top_stalls(top_k);
        if stalls.is_empty() {
            let _ = writeln!(out, "  stalls: none recorded");
        } else {
            let _ = writeln!(out, "  top stall contributors:");
            for (name, cycles) in &stalls {
                let pct = if total_cycles > 0 {
                    100.0 * *cycles as f64 / total_cycles as f64
                } else {
                    0.0
                };
                let _ = writeln!(out, "    {name:<24} {cycles:>10} cycles  ({pct:>5.1}%)");
            }
        }
        for fsm in self.fsms() {
            let rows = self.residency(&fsm);
            let fsm_total: u64 = rows.iter().map(|&(_, v)| v).sum();
            let _ = writeln!(out, "  {fsm} state residency ({fsm_total} cycles):");
            for (state, cycles) in rows {
                let pct = if fsm_total > 0 {
                    100.0 * cycles as f64 / fsm_total as f64
                } else {
                    0.0
                };
                let _ = writeln!(out, "    {state:<24} {cycles:>10} cycles  ({pct:>5.1}%)");
            }
        }
        for (name, buckets) in &self.histograms {
            if buckets.is_empty() {
                continue;
            }
            let cells: Vec<String> = buckets
                .iter()
                .map(|(label, count)| format!("{label}:{count}"))
                .collect();
            let _ = writeln!(out, "  histogram {name}: {}", cells.join(" "));
        }
        out
    }
}

/// The full telemetry bundle a system carries when observability is on:
/// probes for waveforms, counters for profiling.
pub struct Telemetry {
    /// Typed probes and the change-event ring.
    pub probes: ProbeRegistry,
    /// Profiling counters and histograms.
    pub counters: CounterRegistry,
}

impl Telemetry {
    /// Creates an enabled bundle.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            probes: ProbeRegistry::new(config),
            counters: CounterRegistry::new(),
        }
    }

    /// Clears recorded data (events and counter values) between runs,
    /// keeping every registration.
    pub fn clear(&mut self) {
        self.probes.clear();
        self.counters.clear();
    }

    /// Snapshot of the counters and histograms.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.counters.snapshot()
    }
}

/// Implemented by components that expose typed probes.
///
/// Components register their probes once at elaboration and are sampled
/// every cycle *after* the commit phase, when every value has settled —
/// which is why the event-driven and naive scheduler modes produce
/// identical traces. Sampling must not mutate architectural state.
pub trait Probed {
    /// Declares this component's probes (idempotent).
    fn register_probes(&self, reg: &mut ProbeRegistry);
    /// Samples every declared probe for `cycle`.
    fn sample_probes(&self, cycle: u64, reg: &mut ProbeRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    const PHASES: &[&str] = &["warmup", "streaming", "done"];

    #[test]
    fn probe_kind_widths() {
        assert_eq!(ProbeKind::Bit.width(), 1);
        assert_eq!(ProbeKind::Vector(16).width(), 16);
        assert_eq!(ProbeKind::Vector(0).width(), 1);
        assert_eq!(ProbeKind::State(PHASES).width(), 2);
        assert_eq!(ProbeKind::State(&["a", "b"]).width(), 1);
        assert_eq!(ProbeKind::State(&["a", "b", "c", "d", "e"]).width(), 3);
    }

    #[test]
    fn registry_records_only_changes() {
        let mut reg = ProbeRegistry::new(TelemetryConfig::default());
        let p = reg.register("ctrl.phase", ProbeKind::State(PHASES));
        reg.sample(0, p, 0);
        reg.sample(1, p, 0);
        reg.sample(2, p, 1);
        reg.sample(3, p, 1);
        assert_eq!(reg.events_for("ctrl.phase"), vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn register_is_idempotent() {
        let mut reg = ProbeRegistry::new(TelemetryConfig::default());
        let a = reg.register("x", ProbeKind::Bit);
        let b = reg.register("x", ProbeKind::Vector(8));
        assert_eq!(a, b);
        assert_eq!(reg.probe_count(), 1);
    }

    #[test]
    fn ring_eviction_preserves_baseline_and_counts_drops() {
        let mut reg = ProbeRegistry::new(TelemetryConfig {
            capacity: 2,
            start_cycle: 0,
        });
        let p = reg.register("v", ProbeKind::Vector(8));
        reg.sample(0, p, 1);
        reg.sample(1, p, 2);
        reg.sample(2, p, 3);
        assert_eq!(reg.dropped(), 1);
        assert_eq!(reg.events_for("v"), vec![(1, 2), (2, 3)]);
        // The evicted value survives as the baseline: the VCD initial
        // dump shows 1, not x.
        let vcd = reg.export_vcd("t");
        assert!(vcd.contains("$dumpvars\nb1 !"), "{vcd}");
        assert!(vcd.contains("dropped"), "{vcd}");
    }

    #[test]
    fn vcd_is_hierarchical_and_self_checks() {
        let mut reg = ProbeRegistry::new(TelemetryConfig::default());
        let phase = reg.register("ctrl.phase", ProbeKind::State(PHASES));
        let stall = reg.register("ctrl.stall", ProbeKind::Bit);
        let row = reg.register("dram.row_open.0", ProbeKind::Vector(32));
        reg.sample(0, phase, 0);
        reg.sample(0, stall, 0);
        reg.sample(0, row, 5);
        reg.sample(3, phase, 1);
        reg.sample(7, stall, 1);
        let vcd = reg.export_vcd("smache");
        assert!(vcd.contains("$scope module smache $end"));
        assert!(vcd.contains("$scope module ctrl $end"));
        assert!(vcd.contains("$scope module dram $end"));
        assert!(vcd.contains("$var wire 2 ! phase $end"), "{vcd}");
        assert!(vcd.contains("$var wire 1 \" stall $end"), "{vcd}");
        assert!(vcd.contains("#0\n"));
        assert!(vcd.contains("#3\n"));
        vcd_self_check(&vcd).expect("structurally valid");
    }

    #[test]
    fn vcd_self_check_rejects_broken_documents() {
        assert!(vcd_self_check("").is_err());
        // Non-monotonic timestamps.
        let bad =
            "$timescale 1ns $end\n$var wire 1 ! v $end\n$enddefinitions $end\n#5\n1!\n#3\n0!\n";
        assert!(vcd_self_check(bad).unwrap_err().contains("timestamp"));
        // Unknown identifier.
        let bad = "$timescale 1ns $end\n$var wire 1 ! v $end\n$enddefinitions $end\n#1\n1?\n";
        assert!(vcd_self_check(bad).unwrap_err().contains("unknown"));
    }

    #[test]
    fn chrome_export_is_well_formed_and_typed() {
        let mut reg = ProbeRegistry::new(TelemetryConfig::default());
        let phase = reg.register("ctrl.phase", ProbeKind::State(PHASES));
        let stall = reg.register("ctrl.stall", ProbeKind::Bit);
        let occ = reg.register("fifo.occupancy", ProbeKind::Vector(16));
        reg.sample(0, phase, 0);
        reg.sample(2, phase, 1);
        reg.sample(4, stall, 1);
        reg.sample(6, stall, 0);
        reg.sample(8, occ, 3);
        reg.sample(9, phase, 2);
        let json = reg.export_chrome("smache");
        chrome_self_check(&json).expect("well-formed");
        // FSM slices carry state labels; duration of warmup is 2 cycles.
        assert!(json.contains("\"name\":\"warmup\""), "{json}");
        assert!(json.contains("\"dur\":2"), "{json}");
        // The stall is an async span pair.
        assert!(json.contains("\"ph\":\"b\""), "{json}");
        assert!(json.contains("\"ph\":\"e\""), "{json}");
        // The occupancy probe is a counter event.
        assert!(json.contains("\"ph\":\"C\""), "{json}");
    }

    #[test]
    fn chrome_self_check_rejects_malformed_json() {
        assert!(chrome_self_check("{").is_err());
        assert!(chrome_self_check("{\"traceEvents\":[}").is_err());
        assert!(chrome_self_check("{\"a\":1}")
            .unwrap_err()
            .contains("traceEvents"));
        assert!(chrome_self_check("{\"traceEvents\":[]} trailing").is_err());
        chrome_self_check("{\"traceEvents\":[{\"ts\":0.5,\"name\":\"a\\\"b\"}]}").unwrap();
    }

    #[test]
    fn ascii_export_uses_state_labels_and_reports_drops() {
        let mut reg = ProbeRegistry::new(TelemetryConfig {
            capacity: 2,
            start_cycle: 0,
        });
        let p = reg.register("ctrl.phase", ProbeKind::State(PHASES));
        reg.sample(0, p, 0);
        reg.sample(5, p, 1);
        reg.sample(9, p, 2);
        let txt = reg.export_ascii();
        assert!(txt.contains("= streaming"), "{txt}");
        assert!(txt.contains("= done"), "{txt}");
        assert!(txt.contains("1 earlier events dropped"), "{txt}");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = ProbeRegistry::new(TelemetryConfig::default());
        let p = reg.register("v", ProbeKind::Bit);
        reg.set_enabled(false);
        assert!(!reg.enabled());
        reg.sample(0, p, 1);
        reg.sample_path(1, "v", 0);
        assert_eq!(reg.events().count(), 0);
    }

    #[test]
    fn histogram_buckets_and_labels() {
        let mut h = Histogram::default();
        for v in [0, 0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.observe(v);
        }
        assert_eq!(h.total(), 9);
        let rows = h.non_empty();
        assert!(rows.contains(&("0".to_string(), 2)));
        assert!(rows.contains(&("1".to_string(), 1)));
        assert!(rows.contains(&("2-3".to_string(), 2)));
        assert!(rows.contains(&("4-7".to_string(), 2)));
        assert!(rows.contains(&("8-15".to_string(), 1)));
        assert!(rows.contains(&("65536+".to_string(), 1)));
    }

    #[test]
    fn counter_registry_snapshot_and_analysis() {
        let mut c = CounterRegistry::new();
        let storm = c.counter("stall.chaos_storm");
        let bp = c.counter("stall.backpressure");
        c.add(storm, 40);
        c.add(bp, 10);
        for (fsm, states) in [
            ("fsm1", vec![("prefetch", 22u64), ("idle", 78)]),
            ("fsm2", vec![("emit", 60), ("fill", 40)]),
        ] {
            for (state, v) in states {
                let id = c.counter(&format!("residency.{fsm}.{state}"));
                c.add(id, v);
            }
        }
        let occ = c.histogram("occupancy.resp_fifo");
        c.observe(occ, 0);
        c.observe(occ, 3);

        let snap = c.snapshot();
        assert_eq!(snap.counter("stall.chaos_storm"), Some(40));
        assert_eq!(snap.top_stalls(1), vec![("chaos_storm".to_string(), 40)]);
        assert_eq!(snap.fsms(), vec!["fsm1".to_string(), "fsm2".to_string()]);
        let res: u64 = snap.residency("fsm1").iter().map(|&(_, v)| v).sum();
        assert_eq!(res, 100);
        let report = snap.render_analysis(100, 5);
        assert!(report.contains("chaos_storm"), "{report}");
        assert!(report.contains("( 40.0%)"), "{report}");
        assert!(
            report.contains("fsm1 state residency (100 cycles)"),
            "{report}"
        );
        assert!(report.contains("histogram occupancy.resp_fifo"), "{report}");
    }

    #[test]
    fn clear_keeps_registrations_but_zeroes_data() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        let p = t.probes.register("v", ProbeKind::Bit);
        let c = t.counters.counter("stall.x");
        t.probes.sample(0, p, 1);
        t.counters.inc(c);
        t.clear();
        assert_eq!(t.probes.events().count(), 0);
        assert_eq!(t.probes.probe_count(), 1);
        assert_eq!(t.snapshot().counter("stall.x"), Some(0));
        // Re-sampling the same value after clear records it again (no
        // stale last-value suppression across runs).
        t.probes.sample(0, p, 1);
        assert_eq!(t.probes.events().count(), 1);
    }

    #[test]
    fn json_escaping_in_chrome_export() {
        let mut reg = ProbeRegistry::new(TelemetryConfig::default());
        let p = reg.register("odd\"name", ProbeKind::Vector(8));
        reg.sample(0, p, 1);
        let json = reg.export_chrome("proc\\x");
        chrome_self_check(&json).expect("escaped");
    }
}
