//! The [`Module`] trait — the unit of composition in the simulation kernel.

use crate::resources::ResourceUsage;
use crate::signal::WireId;

/// A module's declared interface to the event-driven scheduler: which wires
/// its [`Module::eval`] reads and drives, and whether its outputs are
/// registered.
///
/// Declaring a sensitivity is optional. A module that returns `None` from
/// [`Module::sensitivity`] is treated as *opaque*: the scheduler assumes it
/// may read and drive any wire, so it is re-evaluated whenever anything in
/// the design changes — exactly the behaviour of the brute-force delta loop.
/// Declared modules are woken only when one of their `inputs` actually
/// changes, which is what makes event-driven evaluation cheap.
///
/// The declaration covers `eval` only. [`Module::commit`] runs once per
/// cycle after convergence and may read any wire freely.
#[derive(Debug, Clone, Default)]
pub struct Sensitivity {
    /// Wires read during `eval`. A change on any of these re-schedules the
    /// module within the current cycle.
    pub inputs: Vec<WireId>,
    /// Wires driven during `eval`. Used to order evaluation so producers
    /// run before consumers (fewer delta passes).
    pub outputs: Vec<WireId>,
    /// True when every output is a function of internal state only (a
    /// registered output): the module still re-evaluates when inputs change
    /// (to restage its next state) but cannot start a combinational ripple.
    pub sequential: bool,
}

impl Sensitivity {
    /// A combinational declaration: outputs may depend on `inputs` within
    /// the same cycle.
    pub fn combinational(inputs: Vec<WireId>, outputs: Vec<WireId>) -> Self {
        Sensitivity {
            inputs,
            outputs,
            sequential: false,
        }
    }

    /// A sequential declaration: outputs are driven from registered state
    /// only, so input changes never ripple through within a cycle.
    pub fn sequential(inputs: Vec<WireId>, outputs: Vec<WireId>) -> Self {
        Sensitivity {
            inputs,
            outputs,
            sequential: true,
        }
    }
}

/// A synchronous hardware module.
///
/// # Contract
///
/// * [`Module::eval`] computes combinational outputs from input wires and
///   registered state. The simulator calls it one or more times per cycle
///   (delta passes) until the design settles, so it **must be idempotent**:
///   given unchanged wires and state it must drive the same values and must
///   not mutate architectural state (registers, memories, counters).
/// * [`Module::commit`] latches next state. It runs **exactly once** per
///   cycle, after evaluation has converged; all register ticks, memory
///   writes and statistics updates belong here.
pub trait Module {
    /// Stable instance name, used in error messages and traces.
    fn name(&self) -> &str;

    /// Combinational evaluation (may run several times per cycle).
    fn eval(&mut self, cycle: u64);

    /// State commit (runs once per cycle, after convergence).
    fn commit(&mut self, cycle: u64);

    /// Resources the synthesised equivalent of this module would occupy.
    ///
    /// The default is zero, appropriate for testbench-only components such
    /// as stream sources/sinks that have no hardware counterpart.
    fn resources(&self) -> ResourceUsage {
        ResourceUsage::ZERO
    }

    /// Declares which wires `eval` reads and drives, for the event-driven
    /// scheduler. The default (`None`) marks the module opaque: it is
    /// re-evaluated on every delta pass, reproducing brute-force semantics.
    /// See [`Sensitivity`] for the contract.
    fn sensitivity(&self) -> Option<Sensitivity> {
        None
    }

    /// Declares this module's telemetry probes; called once when a
    /// [`ProbeRegistry`](crate::telemetry::ProbeRegistry) is attached to
    /// the simulator (and again for modules added later). The default
    /// registers nothing.
    fn register_probes(&self, _reg: &mut crate::telemetry::ProbeRegistry) {}

    /// Samples this module's probes for `cycle`. Runs once per cycle after
    /// every [`Module::commit`], when all values have settled — which is
    /// why the event-driven and naive scheduler modes produce identical
    /// traces. Must not mutate architectural state. The default samples
    /// nothing.
    fn sample_probes(&self, _cycle: u64, _reg: &mut crate::telemetry::ProbeRegistry) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        evals: u32,
        commits: u32,
    }

    impl Module for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn eval(&mut self, _cycle: u64) {
            self.evals += 1;
        }
        fn commit(&mut self, _cycle: u64) {
            self.commits += 1;
        }
    }

    #[test]
    fn default_resources_are_zero() {
        let p = Probe {
            evals: 0,
            commits: 0,
        };
        assert!(p.resources().is_zero());
    }

    #[test]
    fn trait_object_dispatch() {
        let mut p: Box<dyn Module> = Box::new(Probe {
            evals: 0,
            commits: 0,
        });
        p.eval(0);
        p.commit(0);
        assert_eq!(p.name(), "probe");
    }
}
