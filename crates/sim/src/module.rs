//! The [`Module`] trait — the unit of composition in the simulation kernel.

use crate::resources::ResourceUsage;

/// A synchronous hardware module.
///
/// # Contract
///
/// * [`Module::eval`] computes combinational outputs from input wires and
///   registered state. The simulator calls it one or more times per cycle
///   (delta passes) until the design settles, so it **must be idempotent**:
///   given unchanged wires and state it must drive the same values and must
///   not mutate architectural state (registers, memories, counters).
/// * [`Module::commit`] latches next state. It runs **exactly once** per
///   cycle, after evaluation has converged; all register ticks, memory
///   writes and statistics updates belong here.
pub trait Module {
    /// Stable instance name, used in error messages and traces.
    fn name(&self) -> &str;

    /// Combinational evaluation (may run several times per cycle).
    fn eval(&mut self, cycle: u64);

    /// State commit (runs once per cycle, after convergence).
    fn commit(&mut self, cycle: u64);

    /// Resources the synthesised equivalent of this module would occupy.
    ///
    /// The default is zero, appropriate for testbench-only components such
    /// as stream sources/sinks that have no hardware counterpart.
    fn resources(&self) -> ResourceUsage {
        ResourceUsage::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        evals: u32,
        commits: u32,
    }

    impl Module for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn eval(&mut self, _cycle: u64) {
            self.evals += 1;
        }
        fn commit(&mut self, _cycle: u64) {
            self.commits += 1;
        }
    }

    #[test]
    fn default_resources_are_zero() {
        let p = Probe {
            evals: 0,
            commits: 0,
        };
        assert!(p.resources().is_zero());
    }

    #[test]
    fn trait_object_dispatch() {
        let mut p: Box<dyn Module> = Box::new(Probe {
            evals: 0,
            commits: 0,
        });
        p.eval(0);
        p.commit(0);
        assert_eq!(p.name(), "probe");
    }
}
