//! Cycle and throughput accounting used by the experiment harnesses.

use std::fmt;

/// Counters accumulated over a simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Total clock cycles simulated.
    pub cycles: u64,
    /// Cycles during which the observed stream transferred a beat.
    pub transfers: u64,
    /// Cycles during which the producer was stalled by back-pressure
    /// (valid && !ready).
    pub stall_cycles: u64,
    /// Cycles during which the producer had nothing to offer (!valid).
    pub idle_cycles: u64,
}

impl CycleStats {
    /// Records one observed cycle.
    pub fn record(&mut self, valid: bool, ready: bool) {
        self.cycles += 1;
        match (valid, ready) {
            (true, true) => self.transfers += 1,
            (true, false) => self.stall_cycles += 1,
            (false, _) => self.idle_cycles += 1,
        }
    }

    /// Transfers per cycle over the whole run (0.0 when no cycles ran).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transfers as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles lost to back-pressure.
    pub fn stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CycleStats) {
        self.cycles += other.cycles;
        self.transfers += other.transfers;
        self.stall_cycles += other.stall_cycles;
        self.idle_cycles += other.idle_cycles;
    }
}

impl fmt::Display for CycleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} transfers ({:.3} beats/cycle), {} stalled, {} idle",
            self.cycles,
            self.transfers,
            self.throughput(),
            self.stall_cycles,
            self.idle_cycles
        )
    }
}

/// Streaming min/max/mean/variance accumulator (Welford's algorithm), used
/// by the benchmark harness to summarise sweeps without storing samples.
#[derive(Debug, Clone, Copy)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// `default()` must match `new()`: a derived implementation would zero
/// `min`/`max` instead of using the infinities, making the first pushed
/// sample report `min(x, 0.0)` / `max(x, 0.0)`.
impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_stats_classify_cycles() {
        let mut s = CycleStats::default();
        s.record(true, true); // transfer
        s.record(true, false); // stall
        s.record(false, true); // idle
        s.record(false, false); // idle
        assert_eq!(s.cycles, 4);
        assert_eq!(s.transfers, 1);
        assert_eq!(s.stall_cycles, 1);
        assert_eq!(s.idle_cycles, 2);
        assert!((s.throughput() - 0.25).abs() < 1e-12);
        assert!((s.stall_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CycleStats::default();
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.stall_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CycleStats {
            cycles: 10,
            transfers: 5,
            stall_cycles: 3,
            idle_cycles: 2,
        };
        let b = CycleStats {
            cycles: 4,
            transfers: 4,
            stall_cycles: 0,
            idle_cycles: 0,
        };
        a.merge(&b);
        assert_eq!(a.cycles, 14);
        assert_eq!(a.transfers, 9);
    }

    #[test]
    fn running_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut r = RunningStats::new();
        for &x in &xs {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert!((r.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(9.0));
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before_mean = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before_mean);

        let mut e = RunningStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), before_mean);
    }

    #[test]
    fn default_behaves_like_new_for_min_max() {
        // Regression: a derived Default zeroed min/max, so default().push(5)
        // reported min = 0.0 and default().push(-5) reported max = 0.0.
        let mut d = RunningStats::default();
        d.push(5.0);
        assert_eq!(d.min(), Some(5.0));
        assert_eq!(d.max(), Some(5.0));
        let mut neg = RunningStats::default();
        neg.push(-5.0);
        assert_eq!(neg.min(), Some(-5.0));
        assert_eq!(neg.max(), Some(-5.0));
    }

    #[test]
    fn merge_empty_into_nonempty_keeps_min_max_and_variance() {
        let mut a = RunningStats::new();
        for x in [2.0, 8.0, 5.0] {
            a.push(x);
        }
        let (min, max, var) = (a.min(), a.max(), a.variance());
        a.merge(&RunningStats::default());
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), min);
        assert_eq!(a.max(), max);
        assert!((a.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_nonempty_into_empty_adopts_all_fields() {
        let mut src = RunningStats::new();
        src.push(-3.0);
        src.push(7.0);
        let mut dst = RunningStats::default();
        dst.merge(&src);
        assert_eq!(dst.count(), 2);
        assert_eq!(dst.min(), Some(-3.0));
        assert_eq!(dst.max(), Some(7.0));
        assert!((dst.mean() - 2.0).abs() < 1e-12);
        // And merging two empties stays empty (min/max stay None).
        let mut e = RunningStats::default();
        e.merge(&RunningStats::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
    }

    #[test]
    fn cycle_stats_merge_with_empty_operands() {
        let full = CycleStats {
            cycles: 10,
            transfers: 4,
            stall_cycles: 3,
            idle_cycles: 3,
        };
        let mut a = full;
        a.merge(&CycleStats::default());
        assert_eq!(a, full);
        let mut b = CycleStats::default();
        b.merge(&full);
        assert_eq!(b, full);
    }

    #[test]
    fn empty_running_stats() {
        let r = RunningStats::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
    }
}
