//! # smache-sim — cycle-level synchronous simulation kernel
//!
//! A small hardware-simulation substrate standing in for the RTL simulator
//! used by the Smache paper (Nabi & Vanderbauwhede, RAW/IPDPSW 2019).
//!
//! The model is a classic two-phase synchronous simulation:
//!
//! 1. **Evaluate**: every [`Module`] computes its combinational outputs from
//!    the current values of its input [`Wire`]s and its registered state.
//!    Evaluation repeats in *delta passes* until no wire changes value,
//!    which settles combinational chains that span modules (e.g. ready/valid
//!    back-pressure). `eval` must therefore be idempotent and must not
//!    mutate architectural state.
//! 2. **Commit**: every module latches its next state ([`Reg::tick`],
//!    memory writes, counters). This runs exactly once per cycle.
//!
//! A minimal design — one sequential module driving a wire from its
//! registered state:
//!
//! ```
//! use smache_sim::{Module, Sensitivity, Simulator, Wire};
//!
//! struct Counter { out: Wire<u64>, count: u64 }
//!
//! impl Module for Counter {
//!     fn name(&self) -> &str { "counter" }
//!     // Idempotent: drives the *registered* count, never mutates it.
//!     fn eval(&mut self, _cycle: u64) { self.out.drive(self.count); }
//!     // Runs exactly once per cycle: the state update lives here.
//!     fn commit(&mut self, _cycle: u64) { self.count += 1; }
//!     fn sensitivity(&self) -> Option<Sensitivity> {
//!         Some(Sensitivity::sequential(vec![], vec![self.out.id()]))
//!     }
//! }
//!
//! let mut sim = Simulator::new();
//! let out = sim.ctx().wire("count", 0u64);
//! sim.add(Box::new(Counter { out: out.clone(), count: 0 }));
//! for _ in 0..5 { sim.step()?; }
//! assert_eq!(out.get(), 4); // the value driven during cycle 5's eval
//! # Ok::<(), smache_sim::SimError>(())
//! ```
//!
//! ## Scheduling
//!
//! How passes are driven is the [`sched`] module's job. By default the
//! simulator runs **event-driven**: at elaboration it derives a static
//! producer-before-consumer evaluation order from each module's
//! [`Sensitivity`] declaration, and within a cycle it re-evaluates only
//! modules whose declared inputs actually changed (dirty-set wakeups). A
//! fully declared, acyclic design settles in a single pass per cycle;
//! genuine combinational feedback iterates locally until fixpoint, bounded
//! by the same pass budget that detects combinational loops. Modules that
//! do not declare a sensitivity are *opaque* and are conservatively woken
//! by every change, so the worst case degrades exactly to the brute-force
//! loop, which remains available as [`SimMode::Naive`] for differential
//! testing ([`Simulator::naive`]). Per-run counters are exposed as
//! [`SchedStats`].
//!
//! For sharding many independent simulations across threads, see
//! [`parallel`].
//!
//! On top of the kernel the crate provides:
//!
//! * [`stream`] — ready/valid streaming links modelled on AXI4-Stream
//!   (`valid`/`ready`/`data`/`last`), the paper's integration interface.
//! * [`stats`] — cycle and throughput accounting.
//! * [`trace`] — a lightweight VCD-like trace recorder for debugging.
//! * [`telemetry`] — first-class observability: a hierarchical typed
//!   [`ProbeRegistry`] sampled in the commit
//!   phase (identical traces in both scheduler modes), profiling
//!   counters/histograms, and real VCD / Chrome `trace_event` exporters.
//! * [`resources`] — FPGA resource accounting (ALMs, registers, BRAM bits)
//!   shared by every simulated module; this is how "actual" utilisation
//!   numbers for Table I of the paper are produced.
//! * [`replay`] — control-schedule capture/replay primitives: the packed
//!   per-cycle control trace, the per-element gather table, the typed
//!   [`ReplayUnsupported`] refusal reasons, and the byte-budgeted LRU
//!   [`ScheduleCache`]. See `docs/PERFORMANCE.md` §6.
//! * [`json`] — the workspace's dependency-free JSON tree, serialisers
//!   (pretty artefacts, compact wire format) and strict parser.
//! * [`hash`] — stable FNV-1a/splitmix64 helpers: per-component chaos
//!   stream seeds and content-addressed cache fingerprints.

#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod json;
pub mod module;
pub mod parallel;
pub mod replay;
pub mod resources;
pub mod sched;
pub mod signal;
pub mod sim;
pub mod stats;
pub mod stream;
pub mod telemetry;
pub mod trace;

pub use error::SimError;
pub use json::{Json, JsonError};
pub use module::{Module, Sensitivity};
pub use parallel::{run_batch, run_scatter};
pub use replay::{
    ControlTrace, CycleRecord, GatherTable, ReplayUnsupported, ScheduleCache, SlotSource,
    TraceTotals,
};
pub use resources::ResourceUsage;
pub use sched::SchedStats;
pub use signal::{Reg, SimCtx, Wire, WireId};
pub use sim::{SimMode, Simulator};
pub use stats::{CycleStats, RunningStats};
pub use stream::{Beat, SinkBuffer, StreamLink, StreamSink, StreamSource};
pub use telemetry::{
    CounterRegistry, Histogram, ProbeId, ProbeKind, ProbeRegistry, Probed, Telemetry,
    TelemetryConfig, TelemetrySnapshot,
};
pub use trace::{TraceOverflow, Tracer, TracerConfig};

/// The raw transfer word used throughout the simulated designs.
///
/// Hardware words of up to 64 logical bits are carried in a `u64`; the
/// logical width (32 bits for every experiment in the paper) is tracked by
/// the memory models for resource accounting.
pub type Word = u64;

/// Convenient `Result` alias for simulation fallible operations.
pub type SimResult<T> = Result<T, SimError>;
