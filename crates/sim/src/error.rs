//! Error type for the simulation kernel.

use std::fmt;

/// Errors raised by the simulation kernel or by simulated modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Combinational evaluation did not converge within the pass budget —
    /// the design contains a combinational loop (e.g. `ready` depending on
    /// `valid` depending on `ready` with no register in between).
    CombinationalLoop {
        /// Cycle at which convergence failed.
        cycle: u64,
        /// Number of delta passes attempted.
        passes: u32,
    },
    /// Two different values were driven onto the same wire within a single
    /// delta pass — a multiple-driver conflict that synthesis would reject.
    DoubleDrive {
        /// Name of the conflicted wire.
        wire: String,
        /// Cycle at which the conflict occurred.
        cycle: u64,
    },
    /// A memory port was used more than its physical port count allows in
    /// one cycle (BRAMs on the target device are at most dual-ported).
    PortConflict {
        /// Name of the memory.
        memory: String,
        /// Number of simultaneous accesses requested.
        requested: u32,
        /// Number of physical ports.
        available: u32,
    },
    /// An address fell outside the memory it was presented to.
    AddressOutOfRange {
        /// Name of the memory.
        memory: String,
        /// The offending address.
        addr: usize,
        /// Memory depth in words.
        depth: usize,
    },
    /// The simulation ran past its watchdog budget without reaching the
    /// expected terminal condition (usually a deadlocked handshake).
    Watchdog {
        /// Cycle budget that was exhausted.
        budget: u64,
        /// Human-readable description of what was being awaited.
        waiting_for: String,
    },
    /// A module was configured inconsistently.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalLoop { cycle, passes } => write!(
                f,
                "combinational loop: no convergence after {passes} delta passes at cycle {cycle}"
            ),
            SimError::DoubleDrive { wire, cycle } => {
                write!(
                    f,
                    "wire `{wire}` driven twice with different values at cycle {cycle}"
                )
            }
            SimError::PortConflict {
                memory,
                requested,
                available,
            } => write!(
                f,
                "memory `{memory}`: {requested} simultaneous accesses but only {available} ports"
            ),
            SimError::AddressOutOfRange {
                memory,
                addr,
                depth,
            } => {
                write!(
                    f,
                    "memory `{memory}`: address {addr} out of range (depth {depth})"
                )
            }
            SimError::Watchdog {
                budget,
                waiting_for,
            } => {
                write!(
                    f,
                    "watchdog: exceeded {budget} cycles while waiting for {waiting_for}"
                )
            }
            SimError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::CombinationalLoop {
            cycle: 42,
            passes: 64,
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("64"));

        let e = SimError::PortConflict {
            memory: "bram0".into(),
            requested: 3,
            available: 2,
        };
        assert!(e.to_string().contains("bram0"));

        let e = SimError::AddressOutOfRange {
            memory: "t".into(),
            addr: 10,
            depth: 8,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("8"));

        let e = SimError::Watchdog {
            budget: 100,
            waiting_for: "valid".into(),
        };
        assert!(e.to_string().contains("valid"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SimError::Config("x".into()), SimError::Config("x".into()));
        assert_ne!(SimError::Config("x".into()), SimError::Config("y".into()));
    }
}
