//! Control-schedule capture and replay primitives.
//!
//! The paper's central observation — a stencil's memory-access pattern is a
//! *static* function of the spec — applies to the simulator too: for a given
//! (plan, system config, kernel, instance count), every control-plane
//! decision the cycle-accurate model makes (FSM transitions, buffer
//! addresses, DRAM issue cycles, stall/valid handshakes) is independent of
//! the data flowing through the datapath. That makes the control plane
//! *recordable*: run the full simulation once, capture its per-cycle trace
//! and the per-element gather pattern, and subsequent runs of the same spec
//! can **replay** the schedule — indexed buffer moves plus the kernel, no
//! delta settling, no module dispatch — with bit-exact outputs and cycle
//! counts.
//!
//! This module holds the engine-agnostic pieces:
//!
//! * [`SlotSource`] / [`GatherTable`] — the per-element read pattern in CSR
//!   form: for each output element, where each stencil-shape value comes
//!   from (a current-instance grid index, a boundary constant, or a hole
//!   masked out of the kernel).
//! * [`ControlTrace`] — the packed per-cycle control-plane record
//!   ([`CycleRecord`]: FSM phase plus handshake/stall flags) with the
//!   derived totals that replay reports instead of re-simulating.
//! * [`ReplayUnsupported`] — the typed refusal reasons. Replay is only
//!   sound while control stays data-independent; anything that breaks that
//!   (fault injection, stall fuzzing, external backpressure, attached
//!   observers) must refuse, never silently diverge.
//! * [`ScheduleCache`] — a byte-budgeted LRU for captured schedules keyed
//!   by [`fingerprint128`](crate::hash::fingerprint128) of the canonical
//!   spec text.
//!
//! The Smache-specific capture/replay executor lives in
//! `smache_core::system::replay`; `smache serve` stacks a [`ScheduleCache`]
//! behind its result cache so differing-seed requests for one spec hit the
//! fast path.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::Word;

/// Where one stencil-shape slot of one output element reads from during
/// replay. Derived once per spec from the buffer plan; identical for every
/// instance because each instance's input is the previous instance's output
/// and all architectural reads (stream taps and static banks alike) resolve
/// to current-instance grid indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotSource {
    /// Read the current-instance input grid at this flat index.
    Grid(u32),
    /// A boundary constant, injected by the plan.
    Const(Word),
    /// Outside the grid under an open boundary: contributes nothing; the
    /// kernel mask bit for this slot is cleared.
    Hole,
}

/// The per-element gather pattern in compressed sparse row form:
/// element `e`'s slots are `sources[starts[e]..starts[e + 1]]`, and
/// `masks[e]` is the kernel mask (bit `i` set when slot `i` is present).
#[derive(Debug, Clone, Default)]
pub struct GatherTable {
    /// CSR row starts, one per element plus a final sentinel.
    pub starts: Vec<u32>,
    /// Flattened slot sources for all elements.
    pub sources: Vec<SlotSource>,
    /// Kernel mask per element.
    pub masks: Vec<u64>,
}

impl GatherTable {
    /// Number of elements covered by the table.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// True when the table covers no elements.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// The slot sources of element `e`.
    #[inline]
    pub fn slots(&self, e: usize) -> &[SlotSource] {
        &self.sources[self.starts[e] as usize..self.starts[e + 1] as usize]
    }

    /// The full gather row of element `e`: slot sources plus kernel mask,
    /// fetched together — the one decode a lane-batched replay performs
    /// per element before fanning out across lanes.
    #[inline]
    pub fn row(&self, e: usize) -> (&[SlotSource], u64) {
        (self.slots(e), self.masks[e])
    }

    /// Approximate heap footprint in bytes (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.starts.len() * 4
            + self.sources.len() * std::mem::size_of::<SlotSource>()
            + self.masks.len() * 8
    }
}

/// One cycle of the recorded control plane, packed into a byte:
/// bits 0–1 the FSM phase code, bits 2–7 the handshake/stall flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleRecord(pub u8);

impl CycleRecord {
    /// Mask of the two phase bits (`warmup`/`streaming`/`done` encoding).
    pub const PHASE_MASK: u8 = 0b11;
    /// The datapath froze this cycle (any stall cause).
    pub const STALLED: u8 = 1 << 2;
    /// FSM-2 emitted one stencil tuple into the kernel pipeline.
    pub const EMITTED: u8 = 1 << 3;
    /// The observed stream transferred a beat (a kernel result drained).
    pub const TRANSFER: u8 = 1 << 4;
    /// The FSM-1 warm-up counter advanced this cycle.
    pub const WARMUP: u8 = 1 << 5;
    /// FSM-2 wanted to shift but no response word was available.
    pub const STARVED: u8 = 1 << 6;
    /// A DRAM read response was routed this cycle.
    pub const RESPONDED: u8 = 1 << 7;

    /// Packs a record from the phase code and the flag bits.
    pub fn pack(phase: u8, flags: u8) -> CycleRecord {
        CycleRecord((phase & Self::PHASE_MASK) | (flags & !Self::PHASE_MASK))
    }

    /// The FSM phase code recorded for this cycle.
    pub fn phase(self) -> u8 {
        self.0 & Self::PHASE_MASK
    }

    /// True when `flag` (one of the bit constants) is set.
    pub fn has(self, flag: u8) -> bool {
        self.0 & flag != 0
    }
}

/// Totals derived by scanning a [`ControlTrace`] — the replay-side source
/// of the cycle statistics a full simulation counts as it goes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTotals {
    /// Total recorded cycles.
    pub cycles: u64,
    /// Cycles with [`CycleRecord::STALLED`] set.
    pub stall_cycles: u64,
    /// Cycles with [`CycleRecord::TRANSFER`] set.
    pub transfers: u64,
    /// Cycles with [`CycleRecord::WARMUP`] set.
    pub warmup_cycles: u64,
    /// Cycles with [`CycleRecord::EMITTED`] set.
    pub emitted: u64,
}

/// The per-cycle control-plane trace of one captured run.
#[derive(Debug, Clone, Default)]
pub struct ControlTrace {
    records: Vec<CycleRecord>,
}

impl ControlTrace {
    /// Creates an empty trace.
    pub fn new() -> ControlTrace {
        ControlTrace::default()
    }

    /// Rebuilds a trace from its recorded cycles — the inverse of
    /// [`ControlTrace::records`], used when deserialising a persisted
    /// schedule.
    pub fn from_records(records: Vec<CycleRecord>) -> ControlTrace {
        ControlTrace { records }
    }

    /// Appends one cycle's record.
    #[inline]
    pub fn record(&mut self, record: CycleRecord) {
        self.records.push(record);
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recorded cycles in order.
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Scans the trace into its totals.
    pub fn totals(&self) -> TraceTotals {
        let mut t = TraceTotals {
            cycles: self.records.len() as u64,
            ..TraceTotals::default()
        };
        for r in &self.records {
            t.stall_cycles += u64::from(r.has(CycleRecord::STALLED));
            t.transfers += u64::from(r.has(CycleRecord::TRANSFER));
            t.warmup_cycles += u64::from(r.has(CycleRecord::WARMUP));
            t.emitted += u64::from(r.has(CycleRecord::EMITTED));
        }
        t
    }

    /// Approximate heap footprint in bytes (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.records.len()
    }
}

/// Why a capture or replay refused to run.
///
/// Replay is sound exactly while the control plane is a pure function of
/// the spec. Each variant names a way that stops being true (or a way the
/// recorded schedule fails to match the request). Refusal is the *typed
/// fallback path*: callers run the full simulation instead — replay never
/// silently diverges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayUnsupported {
    /// An active *corrupting* fault-injection plan couples the outcome to
    /// the data (latency-only plans are data-independent and replayable).
    FaultPlan,
    /// An external stall schedule (stall fuzzing) drives backpressure.
    StallSchedule,
    /// An external backpressure callback is attached to the system.
    ExternalBackpressure,
    /// A probe tracer is attached; replay produces no probe events.
    Tracer,
    /// Telemetry is attached; replay produces no telemetry samples.
    Telemetry,
    /// A result tap observes the datapath mid-run.
    ResultTap,
    /// The schedule was recorded for a different kernel.
    KernelMismatch {
        /// Kernel name the schedule was captured with.
        expected: String,
        /// Kernel name the replay was asked to run.
        actual: String,
    },
    /// The input length does not match the captured grid size.
    InputLength {
        /// Grid length the schedule was captured for.
        expected: usize,
        /// Input length supplied to replay.
        actual: usize,
    },
    /// The instance count does not match the captured schedule.
    InstancesMismatch {
        /// Instance count the schedule was captured for.
        expected: u64,
        /// Instance count supplied to replay.
        actual: u64,
    },
    /// Capture self-verification failed: replaying the capture input did
    /// not reproduce the full simulation bit-exactly. Never expected; the
    /// typed refusal keeps the failure loud and the fallback safe.
    ScheduleDivergence {
        /// What diverged.
        detail: String,
    },
}

impl ReplayUnsupported {
    /// Short machine-friendly label (stats, log lines, test assertions).
    pub fn label(&self) -> &'static str {
        match self {
            ReplayUnsupported::FaultPlan => "fault_plan",
            ReplayUnsupported::StallSchedule => "stall_schedule",
            ReplayUnsupported::ExternalBackpressure => "external_backpressure",
            ReplayUnsupported::Tracer => "tracer",
            ReplayUnsupported::Telemetry => "telemetry",
            ReplayUnsupported::ResultTap => "result_tap",
            ReplayUnsupported::KernelMismatch { .. } => "kernel_mismatch",
            ReplayUnsupported::InputLength { .. } => "input_length",
            ReplayUnsupported::InstancesMismatch { .. } => "instances_mismatch",
            ReplayUnsupported::ScheduleDivergence { .. } => "schedule_divergence",
        }
    }
}

impl std::fmt::Display for ReplayUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayUnsupported::FaultPlan => {
                write!(f, "replay unsupported: active corrupting fault-injection plan")
            }
            ReplayUnsupported::StallSchedule => {
                write!(f, "replay unsupported: external stall schedule attached")
            }
            ReplayUnsupported::ExternalBackpressure => {
                write!(f, "replay unsupported: external backpressure attached")
            }
            ReplayUnsupported::Tracer => write!(f, "replay unsupported: probe tracer attached"),
            ReplayUnsupported::Telemetry => write!(f, "replay unsupported: telemetry attached"),
            ReplayUnsupported::ResultTap => write!(f, "replay unsupported: result tap attached"),
            ReplayUnsupported::KernelMismatch { expected, actual } => write!(
                f,
                "replay refused: schedule captured with kernel `{expected}`, asked to run `{actual}`"
            ),
            ReplayUnsupported::InputLength { expected, actual } => write!(
                f,
                "replay refused: schedule covers {expected} elements, input has {actual}"
            ),
            ReplayUnsupported::InstancesMismatch { expected, actual } => write!(
                f,
                "replay refused: schedule captured for {expected} instance(s), asked for {actual}"
            ),
            ReplayUnsupported::ScheduleDivergence { detail } => {
                write!(f, "schedule diverged from full simulation: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplayUnsupported {}

/// Running totals a [`ScheduleCache`] reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Schedules larger than the whole budget, never stored.
    pub oversize: u64,
}

struct CacheEntry<V> {
    value: Arc<V>,
    bytes: usize,
    last_used: u64,
}

/// A byte-budgeted LRU cache for captured control schedules (or any other
/// fingerprint-keyed value with an explicit byte cost).
///
/// Same deterministic policy as the serve layer's result cache: every hit
/// and insert stamps the entry with a monotonic use counter, and inserts
/// evict the lowest-stamped entries until the budget holds. Values are
/// handed out as [`Arc`] clones so a hit is O(1) regardless of schedule
/// size.
pub struct ScheduleCache<V> {
    budget: usize,
    bytes: usize,
    tick: u64,
    entries: BTreeMap<(u64, u64), CacheEntry<V>>,
    stats: ScheduleCacheStats,
}

impl<V> ScheduleCache<V> {
    /// Creates an empty cache holding at most `budget` bytes of schedules.
    pub fn new(budget: usize) -> ScheduleCache<V> {
        ScheduleCache {
            budget,
            bytes: 0,
            tick: 0,
            entries: BTreeMap::new(),
            stats: ScheduleCacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: (u64, u64)) -> Option<Arc<V>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// True when `key` is resident, *without* refreshing its recency or
    /// counting a lookup — a pure probe. The serve reactor uses it to
    /// classify requests at admission (a resident schedule means the job
    /// is a cheap replay) without the classification itself perturbing
    /// the LRU order or the hit/miss statistics.
    pub fn contains(&self, key: (u64, u64)) -> bool {
        self.entries.contains_key(&key)
    }

    /// Stores `value` under `key` with an explicit byte cost, evicting
    /// least-recently-used entries until the budget holds. A value larger
    /// than the entire budget is not stored.
    pub fn insert(&mut self, key: (u64, u64), value: Arc<V>, bytes: usize) {
        if bytes > self.budget {
            self.stats.oversize += 1;
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            CacheEntry {
                value,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        } else {
            self.stats.insertions += 1;
        }
        self.bytes += bytes;

        while self.bytes > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("over budget implies non-empty");
            let evicted = self.entries.remove(&victim).expect("victim exists");
            self.bytes -= evicted.bytes;
            self.stats.evictions += 1;
        }
    }

    /// Bytes of schedule data currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The byte budget this cache was created with. A `0` budget can
    /// never store anything — callers use it as "caching disabled".
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running hit/miss/eviction totals.
    pub fn stats(&self) -> ScheduleCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_record_packs_phase_and_flags() {
        let r = CycleRecord::pack(1, CycleRecord::STALLED | CycleRecord::TRANSFER);
        assert_eq!(r.phase(), 1);
        assert!(r.has(CycleRecord::STALLED));
        assert!(r.has(CycleRecord::TRANSFER));
        assert!(!r.has(CycleRecord::EMITTED));
        // Phase bits never leak into flags and vice versa.
        let r = CycleRecord::pack(2, 0);
        assert_eq!(r.phase(), 2);
        assert!(!r.has(CycleRecord::STALLED));
    }

    #[test]
    fn trace_totals_count_flags() {
        let mut t = ControlTrace::new();
        t.record(CycleRecord::pack(0, CycleRecord::WARMUP));
        t.record(CycleRecord::pack(
            1,
            CycleRecord::EMITTED | CycleRecord::TRANSFER,
        ));
        t.record(CycleRecord::pack(1, CycleRecord::STALLED));
        let totals = t.totals();
        assert_eq!(totals.cycles, 3);
        assert_eq!(totals.warmup_cycles, 1);
        assert_eq!(totals.emitted, 1);
        assert_eq!(totals.transfers, 1);
        assert_eq!(totals.stall_cycles, 1);
    }

    #[test]
    fn gather_table_csr_rows() {
        let table = GatherTable {
            starts: vec![0, 2, 3],
            sources: vec![SlotSource::Grid(4), SlotSource::Hole, SlotSource::Const(9)],
            masks: vec![0b01, 0b1],
        };
        assert_eq!(table.len(), 2);
        assert_eq!(table.slots(0), &[SlotSource::Grid(4), SlotSource::Hole]);
        assert_eq!(table.slots(1), &[SlotSource::Const(9)]);
    }

    #[test]
    fn schedule_cache_is_lru_under_byte_budget() {
        let mut c: ScheduleCache<&'static str> = ScheduleCache::new(30);
        let key = |n: u64| (n, n.wrapping_mul(31));
        c.insert(key(1), Arc::new("a"), 10);
        c.insert(key(2), Arc::new("b"), 10);
        c.insert(key(3), Arc::new("c"), 10);
        assert!(c.get(key(1)).is_some()); // refresh 1
        c.insert(key(4), Arc::new("d"), 10);
        assert!(c.get(key(2)).is_none(), "LRU victim must be 2");
        assert!(c.get(key(1)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.bytes(), 30);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn schedule_cache_rejects_oversize() {
        let mut c: ScheduleCache<u8> = ScheduleCache::new(10);
        c.insert((1, 1), Arc::new(0), 11);
        assert!(c.is_empty());
        assert_eq!(c.stats().oversize, 1);
    }

    #[test]
    fn refusal_labels_are_stable() {
        assert_eq!(ReplayUnsupported::FaultPlan.label(), "fault_plan");
        assert_eq!(ReplayUnsupported::Tracer.label(), "tracer");
        let e = ReplayUnsupported::InstancesMismatch {
            expected: 4,
            actual: 5,
        };
        assert_eq!(e.label(), "instances_mismatch");
        assert!(e.to_string().contains("4 instance(s)"));
    }
}
