//! FPGA resource accounting.
//!
//! Every simulated module can report the on-chip resources its synthesised
//! equivalent would occupy. Summing a design's module tree yields the
//! "actual" columns of Table I in the paper; the analytical cost model in
//! `smache-core::cost` yields the "estimate" columns.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// On-chip resource utilisation of a (sub)design, in the units the paper
/// reports for a Stratix-V device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ResourceUsage {
    /// Adaptive logic modules (combinational logic).
    pub alms: u64,
    /// Flip-flop / distributed-RAM register bits.
    pub registers: u64,
    /// Block-RAM bits (M20K contents).
    pub bram_bits: u64,
    /// DSP blocks (unused by the paper's designs but tracked for kernels).
    pub dsps: u64,
}

impl ResourceUsage {
    /// No resources.
    pub const ZERO: ResourceUsage = ResourceUsage {
        alms: 0,
        registers: 0,
        bram_bits: 0,
        dsps: 0,
    };

    /// Usage consisting only of register bits.
    pub fn regs(bits: u64) -> Self {
        ResourceUsage {
            registers: bits,
            ..Self::ZERO
        }
    }

    /// Usage consisting only of BRAM bits.
    pub fn bram(bits: u64) -> Self {
        ResourceUsage {
            bram_bits: bits,
            ..Self::ZERO
        }
    }

    /// Usage consisting only of ALMs.
    pub fn alm(count: u64) -> Self {
        ResourceUsage {
            alms: count,
            ..Self::ZERO
        }
    }

    /// True when no resource is used at all.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Total memory bits regardless of placement (registers + BRAM).
    pub fn total_memory_bits(&self) -> u64 {
        self.registers + self.bram_bits
    }

    /// Relative error of `self` as an estimate of `actual`, per field, as a
    /// fraction of `actual` (fields where `actual` is zero contribute zero
    /// if the estimate is also zero, otherwise 1.0).
    pub fn relative_error(&self, actual: &ResourceUsage) -> f64 {
        fn field_err(est: u64, act: u64) -> f64 {
            if act == 0 {
                if est == 0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                (est as f64 - act as f64).abs() / act as f64
            }
        }
        let errs = [
            field_err(self.registers, actual.registers),
            field_err(self.bram_bits, actual.bram_bits),
        ];
        errs.iter().copied().fold(0.0_f64, f64::max)
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            alms: self.alms + rhs.alms,
            registers: self.registers + rhs.registers,
            bram_bits: self.bram_bits + rhs.bram_bits,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: ResourceUsage) {
        *self = *self + rhs;
    }
}

impl Sum for ResourceUsage {
    fn sum<I: Iterator<Item = ResourceUsage>>(iter: I) -> Self {
        iter.fold(ResourceUsage::ZERO, Add::add)
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ALMs, {} registers, {} BRAM bits",
            self.alms, self.registers, self.bram_bits
        )?;
        if self.dsps > 0 {
            write!(f, ", {} DSPs", self.dsps)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_fieldwise() {
        let a = ResourceUsage {
            alms: 1,
            registers: 2,
            bram_bits: 3,
            dsps: 4,
        };
        let b = ResourceUsage {
            alms: 10,
            registers: 20,
            bram_bits: 30,
            dsps: 40,
        };
        let c = a + b;
        assert_eq!(
            c,
            ResourceUsage {
                alms: 11,
                registers: 22,
                bram_bits: 33,
                dsps: 44
            }
        );
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            ResourceUsage::regs(8),
            ResourceUsage::bram(16),
            ResourceUsage::alm(2),
        ];
        let total: ResourceUsage = parts.into_iter().sum();
        assert_eq!(total.registers, 8);
        assert_eq!(total.bram_bits, 16);
        assert_eq!(total.alms, 2);
        assert_eq!(total.total_memory_bits(), 24);
    }

    #[test]
    fn zero_detection() {
        assert!(ResourceUsage::ZERO.is_zero());
        assert!(!ResourceUsage::regs(1).is_zero());
    }

    #[test]
    fn relative_error_tracks_worst_field() {
        let est = ResourceUsage {
            registers: 90,
            bram_bits: 100,
            ..ResourceUsage::ZERO
        };
        let act = ResourceUsage {
            registers: 100,
            bram_bits: 100,
            ..ResourceUsage::ZERO
        };
        let err = est.relative_error(&act);
        assert!((err - 0.1).abs() < 1e-9);
    }

    #[test]
    fn relative_error_zero_actual() {
        let est = ResourceUsage::regs(5);
        let act = ResourceUsage::ZERO;
        assert_eq!(est.relative_error(&act), 1.0);
        assert_eq!(
            ResourceUsage::ZERO.relative_error(&ResourceUsage::ZERO),
            0.0
        );
    }

    #[test]
    fn display_includes_all_units() {
        let r = ResourceUsage {
            alms: 79,
            registers: 262,
            bram_bits: 0,
            dsps: 0,
        };
        let s = r.to_string();
        assert!(s.contains("79 ALMs"));
        assert!(s.contains("262 registers"));
        assert!(!s.contains("DSP"));
    }
}
