//! A minimal JSON value tree with a serialiser and a strict parser.
//!
//! The workspace intentionally has no serde dependency; its JSON needs are
//! small and fully under our control: bench artefacts (`BENCH_*.json`),
//! versioned run reports, and the newline-delimited request/response
//! protocol of `smache serve`. A hand-rolled tree covers all three.
//!
//! Two serialisations are provided: [`Json::pretty`] (two-space indent,
//! trailing newline — committed artefacts) and [`Json::compact`]
//! (single-line — wire protocol and cache entries). Both are
//! deterministic: object keys keep insertion order, integers and floats
//! render with Rust's shortest-round-trip `Display`. [`Json::parse`]
//! accepts standard JSON and preserves the integer/float distinction, so
//! `parse(compact(x)) == x` and `compact(parse(s))` is a canonical form.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so cycle counts stay exact).
    Int(i64),
    /// A float; non-finite values serialise as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialises with two-space indentation and a trailing newline,
    /// suitable for committing as an artefact.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    /// Serialises to a single line with no whitespace — the wire format
    /// for newline-delimited protocols and cache entries.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Looks a key up in an object (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as unsigned, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// A numeric payload widened to `f64` (accepts `Int` and `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a standard JSON document (one value, nothing trailing).
    ///
    /// Integers without a fraction or exponent that fit `i64` come back as
    /// [`Json::Int`]; every other number as [`Json::Num`]. Errors carry a
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was detected.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.i,
            msg: msg.into(),
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(cp) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-walk the UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    let len = utf8_len(c).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    let bytes = self
                        .b
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc2..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_rendering() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Int(-3).pretty(), "-3\n");
        assert_eq!(Json::Num(1.5).pretty(), "1.5\n");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::str("a\"b").pretty(), "\"a\\\"b\"\n");
    }

    #[test]
    fn nested_structure_round_trips_visually() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig2")),
            ("seeds", Json::Arr(vec![Json::Int(0), Json::Int(1)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        let text = doc.pretty();
        assert!(text.starts_with("{\n  \"name\": \"fig2\""));
        assert!(text.contains("\"seeds\": [\n    0,\n    1\n  ]"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"nested\": {\n    \"ok\": true\n  }"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::str("line\nbreak\u{1}").pretty();
        assert!(s.contains("\\n"));
        assert!(s.contains("\\u0001"));
    }

    #[test]
    fn compact_is_single_line() {
        let doc = Json::obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::str("x"), Json::Null])),
        ]);
        assert_eq!(doc.compact(), r#"{"a":1,"b":["x",null]}"#);
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let doc = Json::obj(vec![
            ("int", Json::Int(-42)),
            ("float", Json::Num(2.75)),
            ("s", Json::str("tab\there \"q\" π")),
            ("list", Json::Arr(vec![Json::Bool(false), Json::Int(0)])),
            ("obj", Json::obj(vec![("k", Json::Null)])),
            ("empty_obj", Json::obj(vec![])),
        ]);
        assert_eq!(Json::parse(&doc.compact()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
        // Serialise → parse → serialise is byte-identical.
        let text = doc.compact();
        assert_eq!(Json::parse(&text).unwrap().compact(), text);
    }

    #[test]
    fn parse_preserves_int_float_distinction() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Num(7.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        // Integers beyond i64 degrade to float rather than failing.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn parse_unicode_escapes() {
        // Raw multi-byte UTF-8 passes through; escapes decode, including
        // surrogate pairs; a lone high surrogate is rejected.
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap(), Json::str("Aé😀"));
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::str("Aé😀")
        );
        assert!(Json::parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} x",
            "nul",
            "[1 2]",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"cmd":"simulate","seed":3,"deep":{"x":[1,2]}}"#).unwrap();
        assert_eq!(doc.get("cmd").and_then(Json::as_str), Some("simulate"));
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(3));
        assert_eq!(
            doc.get("deep")
                .and_then(|d| d.get("x"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
    }
}
