//! Ready/valid streaming links (AXI4-Stream style).
//!
//! The paper integrates Smache behind "the index, the work-instance, and a
//! stall signal to allow integration with e.g. the AXI4-Stream protocol".
//! [`StreamLink`] carries exactly that: a data word, its stream index, the
//! work-instance number, `valid`/`last` from the producer, and `ready`
//! (the inverse of *stall*) from the consumer. A transfer occurs on a cycle
//! where both `valid` and `ready` are high.

use std::fmt;

use crate::module::{Module, Sensitivity};
use crate::signal::{SimCtx, Wire};
use crate::Word;

/// One beat of a data stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Beat {
    /// The payload word.
    pub data: Word,
    /// Index of the element within the stream (the paper's `i` in
    /// `s[i] = m[p(i)]`).
    pub index: u64,
    /// Work-instance (outer iteration) number.
    pub instance: u64,
}

/// A ready/valid stream connection between a producer and a consumer.
///
/// Cloning the link clones the wire *handles*, not the nets: both clones
/// observe and drive the same signals, so the producer and the consumer
/// each hold a clone of the same link.
#[derive(Clone)]
pub struct StreamLink {
    /// Producer asserts when `beat` is meaningful.
    pub valid: Wire<bool>,
    /// The current beat (only meaningful while `valid`).
    pub beat: Wire<Beat>,
    /// Producer asserts on the final beat of a packet (a work-instance).
    pub last: Wire<bool>,
    /// Consumer asserts when it can accept a beat this cycle. `!ready` is
    /// the paper's *stall* signal.
    pub ready: Wire<bool>,
}

impl StreamLink {
    /// Creates an idle link (not valid, consumer ready).
    pub fn new(ctx: &SimCtx, name: &str) -> Self {
        StreamLink {
            valid: ctx.wire(&format!("{name}.valid"), false),
            beat: ctx.wire(&format!("{name}.beat"), Beat::default()),
            last: ctx.wire(&format!("{name}.last"), false),
            ready: ctx.wire(&format!("{name}.ready"), true),
        }
    }

    /// True when a transfer completes this cycle.
    #[inline]
    pub fn fires(&self) -> bool {
        self.valid.get() && self.ready.get()
    }

    /// Producer-side helper: present a beat.
    pub fn offer(&self, beat: Beat, last: bool) {
        self.valid.drive(true);
        self.beat.drive(beat);
        self.last.drive(last);
    }

    /// Producer-side helper: present nothing.
    pub fn idle(&self) {
        self.valid.drive(false);
        self.last.drive(false);
    }
}

impl fmt::Debug for StreamLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StreamLink(valid={}, ready={}, beat={:?})",
            self.valid.get(),
            self.ready.get(),
            self.beat.get()
        )
    }
}

/// Testbench component: produces a fixed sequence of beats on a link,
/// honouring back-pressure.
pub struct StreamSource {
    name: String,
    link: StreamLink,
    items: Vec<Beat>,
    /// Index of the next item to present.
    pos: usize,
    sent: u64,
}

impl StreamSource {
    /// Creates a source that will emit `items` in order.
    pub fn new(name: &str, link: StreamLink, items: Vec<Beat>) -> Self {
        StreamSource {
            name: name.to_string(),
            link,
            items,
            pos: 0,
            sent: 0,
        }
    }

    /// Number of beats accepted by the consumer so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// True when every item has been transferred.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.items.len()
    }
}

impl Module for StreamSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, _cycle: u64) {
        if self.pos < self.items.len() {
            let last = self.pos + 1 == self.items.len();
            self.link.offer(self.items[self.pos], last);
        } else {
            self.link.idle();
        }
    }

    fn commit(&mut self, _cycle: u64) {
        if self.pos < self.items.len() && self.link.fires() {
            self.pos += 1;
            self.sent += 1;
        }
    }

    fn sensitivity(&self) -> Option<Sensitivity> {
        // `eval` presents the next item from internal state; `ready` is only
        // read in `commit`, so the source has no eval-time inputs.
        Some(Sensitivity::sequential(
            vec![],
            vec![
                self.link.valid.id(),
                self.link.beat.id(),
                self.link.last.id(),
            ],
        ))
    }
}

/// Testbench component: collects beats from a link into a shared buffer,
/// optionally stalling on a fixed schedule to exercise back-pressure.
pub struct StreamSink {
    name: String,
    link: StreamLink,
    collected: std::rc::Rc<std::cell::RefCell<Vec<Beat>>>,
    /// Stall pattern: sink is ready on cycle `c` iff
    /// `stall_period == 0 || c % stall_period != stall_phase`.
    stall_period: u64,
    stall_phase: u64,
}

/// Shared handle onto a sink's output buffer (usable after the sink has been
/// moved into the simulator).
pub type SinkBuffer = std::rc::Rc<std::cell::RefCell<Vec<Beat>>>;

impl StreamSink {
    /// Creates an always-ready sink; returns the sink and a shared handle to
    /// its collected beats.
    pub fn new(name: &str, link: StreamLink) -> (Self, SinkBuffer) {
        let buf: SinkBuffer = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        (
            StreamSink {
                name: name.to_string(),
                link,
                collected: std::rc::Rc::clone(&buf),
                stall_period: 0,
                stall_phase: 0,
            },
            buf,
        )
    }

    /// Creates a sink that deasserts `ready` once every `period` cycles.
    pub fn with_stalls(
        name: &str,
        link: StreamLink,
        period: u64,
        phase: u64,
    ) -> (Self, SinkBuffer) {
        assert!(period > 0, "stall period must be positive");
        let (mut sink, buf) = Self::new(name, link);
        sink.stall_period = period;
        sink.stall_phase = phase % period;
        (sink, buf)
    }

    fn is_ready(&self, cycle: u64) -> bool {
        self.stall_period == 0 || cycle % self.stall_period != self.stall_phase
    }
}

impl Module for StreamSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, cycle: u64) {
        self.link.ready.drive(self.is_ready(cycle));
    }

    fn commit(&mut self, _cycle: u64) {
        if self.link.fires() {
            self.collected.borrow_mut().push(self.link.beat.get());
        }
    }

    fn sensitivity(&self) -> Option<Sensitivity> {
        // `ready` follows the stall schedule (a function of the cycle
        // number), not of any wire.
        Some(Sensitivity::sequential(vec![], vec![self.link.ready.id()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn beats(n: u64) -> Vec<Beat> {
        (0..n)
            .map(|i| Beat {
                data: i * 10,
                index: i,
                instance: 0,
            })
            .collect()
    }

    #[test]
    fn source_to_sink_transfers_all_beats_in_order() {
        let mut sim = Simulator::new();
        let link = StreamLink::new(sim.ctx(), "s");
        sim.add(Box::new(StreamSource::new("src", link.clone(), beats(5))));
        let (sink, buf) = StreamSink::new("snk", link);
        sim.add(Box::new(sink));
        sim.run(6).unwrap();
        let got = buf.borrow();
        assert_eq!(got.len(), 5);
        for (i, b) in got.iter().enumerate() {
            assert_eq!(b.data, i as u64 * 10);
            assert_eq!(b.index, i as u64);
        }
    }

    #[test]
    fn back_pressure_slows_but_loses_nothing() {
        let mut sim = Simulator::new();
        let link = StreamLink::new(sim.ctx(), "s");
        sim.add(Box::new(StreamSource::new("src", link.clone(), beats(9))));
        // Stall every 3rd cycle: 9 beats need at least 13 cycles.
        let (sink, buf) = StreamSink::with_stalls("snk", link, 3, 0);
        sim.add(Box::new(sink));
        sim.run(20).unwrap();
        let got = buf.borrow();
        assert_eq!(
            got.len(),
            9,
            "no beat may be dropped or duplicated under stalls"
        );
        let datas: Vec<u64> = got.iter().map(|b| b.data).collect();
        assert_eq!(datas, (0..9).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn stalled_cycle_does_not_transfer() {
        let mut sim = Simulator::new();
        let link = StreamLink::new(sim.ctx(), "s");
        sim.add(Box::new(StreamSource::new("src", link.clone(), beats(4))));
        // Sink stalls on every cycle where c % 2 == 0, i.e. half throughput.
        let (sink, buf) = StreamSink::with_stalls("snk", link, 2, 0);
        sim.add(Box::new(sink));
        sim.run(4).unwrap();
        assert_eq!(buf.borrow().len(), 2, "only odd cycles transfer");
    }

    #[test]
    fn last_is_asserted_on_final_beat_only() {
        let mut sim = Simulator::new();
        let link = StreamLink::new(sim.ctx(), "s");
        let obs = link.clone();
        sim.add(Box::new(StreamSource::new("src", link.clone(), beats(3))));
        let (sink, _buf) = StreamSink::new("snk", link);
        sim.add(Box::new(sink));

        let mut lasts = Vec::new();
        for _ in 0..4 {
            sim.step().unwrap();
            // After step, wires hold the values of the *completed* cycle.
            lasts.push((obs.valid.get(), obs.last.get()));
        }
        // Beats fire on cycles 0,1,2; `last` must be true only on the third.
        assert_eq!(lasts[0], (true, false));
        assert_eq!(lasts[1], (true, false));
        assert_eq!(lasts[2], (true, true));
        assert!(!lasts[3].0, "source goes idle after exhaustion");
    }

    #[test]
    fn source_reports_exhaustion_and_count() {
        let mut sim = Simulator::new();
        let link = StreamLink::new(sim.ctx(), "s");
        let src = StreamSource::new("src", link.clone(), beats(2));
        assert!(!src.exhausted());
        sim.add(Box::new(src));
        let (sink, _buf) = StreamSink::new("snk", link);
        sim.add(Box::new(sink));
        sim.run(3).unwrap();
        // The source was moved into the simulator; its effect is observable
        // through the link going idle.
    }
}
