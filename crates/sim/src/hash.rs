//! Stable, dependency-free hashing shared across the workspace.
//!
//! Several subsystems need a hash that is *identical on every platform and
//! in every run* — `std::collections::hash_map::DefaultHasher` is
//! explicitly not that. Two users with hard reproducibility contracts
//! share these helpers:
//!
//! * **Chaos streams** (`smache-mem`'s fault injection) derive one PRNG
//!   stream per component as [`stream_seed`]`(seed, name)`, so a fault
//!   schedule is a pure function of the `(seed, component)` pair.
//! * **The result cache** (`smache-serve`) content-addresses responses by
//!   [`fingerprint128`] of the canonical request text, so a cache key
//!   computed today matches one computed by any future run of any build.
//!
//! The exact output values are part of the workspace's compatibility
//! surface; the unit tests below pin them.

/// 64-bit FNV-1a over a byte string.
///
/// The offset basis and prime are the standard Fowler–Noll–Vo constants,
/// so values can be cross-checked against any independent implementation.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The splitmix64 finaliser — a cheap, well-mixed `u64 -> u64` bijection.
///
/// Used to turn structured inputs (seeds XORed with name hashes) into
/// PRNG states and secondary fingerprint lanes.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives a per-component stream seed: `seed ^ fnv1a(name)`.
///
/// This is the seed-derivation rule documented in `docs/RESILIENCE.md`:
/// each named consumer gets an independent, reproducible stream from one
/// master seed, and adding a new named stream never perturbs existing
/// ones.
pub fn stream_seed(seed: u64, name: &str) -> u64 {
    seed ^ fnv1a(name.as_bytes())
}

/// A 128-bit content fingerprint of a byte string, as two `u64` lanes.
///
/// Lane one is plain FNV-1a; lane two re-walks the bytes through a
/// splitmix64-chained state so the lanes fail independently. 128 bits make
/// accidental collisions in a content-addressed cache implausible
/// (birthday bound ~2^64 entries) without pulling in a crypto hash.
pub fn fingerprint128(bytes: &[u8]) -> (u64, u64) {
    let h1 = fnv1a(bytes);
    let mut h2 = splitmix64(h1 ^ bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h2 = splitmix64(h2 ^ u64::from_le_bytes(word));
    }
    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn stream_seed_is_stable_across_runs() {
        // These exact values are relied on by recorded chaos schedules:
        // changing them silently would invalidate every seeded artefact.
        assert_eq!(stream_seed(0, "mem.dram"), fnv1a(b"mem.dram"));
        assert_eq!(stream_seed(7, "mem.dram"), 7 ^ fnv1a(b"mem.dram"));
        assert_eq!(stream_seed(7, "mem.dram"), 0x12f5_7058_8239_7673);
        assert_eq!(stream_seed(7, "axi.stream"), 0x9018_cac3_ca07_cefc);
    }

    #[test]
    fn stream_seed_separates_components() {
        let a = stream_seed(1, "mem.dram");
        let b = stream_seed(1, "mem.resp_fifo");
        let c = stream_seed(2, "mem.dram");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_is_a_bijection_on_samples() {
        let mut seen = std::collections::BTreeSet::new();
        for x in 0..1000u64 {
            assert!(seen.insert(splitmix64(x)));
        }
    }

    #[test]
    fn fingerprint_lanes_are_independent_and_stable() {
        let (a1, a2) = fingerprint128(b"simulate grid=11x11 seed=1");
        let (b1, b2) = fingerprint128(b"simulate grid=11x11 seed=2");
        assert_ne!((a1, a2), (b1, b2));
        // Pinned values: the content-addressed cache key format.
        assert_eq!(a1, fnv1a(b"simulate grid=11x11 seed=1"));
        let again = fingerprint128(b"simulate grid=11x11 seed=1");
        assert_eq!((a1, a2), again);
    }

    #[test]
    fn fingerprint_distinguishes_zero_padding() {
        // Chunked folding must not confuse a short string with its
        // zero-padded extension.
        let a = fingerprint128(b"abc");
        let b = fingerprint128(b"abc\0\0");
        assert_ne!(a, b);
    }
}
