//! Wires, registers and the shared simulation context.
//!
//! [`Wire`] models a combinational net: values driven during a delta pass
//! become visible immediately to subsequent readers, and the simulator keeps
//! running passes until a full pass changes nothing. [`Reg`] models a D-type
//! flip-flop bank: `d()` stages the next value during evaluation and
//! [`Reg::tick`] latches it during commit.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::error::SimError;

/// Identifies a wire within one [`SimCtx`]; allocated densely from zero in
/// creation order. Modules quote these ids in their
/// [`Sensitivity`](crate::Sensitivity) declarations.
pub type WireId = u32;

/// Shared bookkeeping for one simulator instance.
///
/// Every [`Wire`] created from a context reports value changes and drive
/// conflicts back to it; the [`Simulator`](crate::Simulator) uses the change
/// count to detect delta convergence.
#[derive(Clone)]
pub struct SimCtx {
    inner: Rc<CtxInner>,
}

struct CtxInner {
    /// Monotonically increasing id of the current delta pass.
    pass: Cell<u64>,
    /// Number of wire value changes observed during the current pass.
    changes: Cell<u64>,
    /// Cycle counter mirrored here so wires can report errors with context.
    cycle: Cell<u64>,
    /// First drive conflict observed (reported at end of pass).
    conflict: RefCell<Option<SimError>>,
    /// Next wire id to hand out.
    next_wire: Cell<WireId>,
    /// Ids of wires whose value changed during the current pass, in drive
    /// order. The event-driven scheduler consumes this to wake exactly the
    /// modules sensitive to what moved.
    changed: RefCell<Vec<WireId>>,
    /// Wire names, indexed by [`WireId`]. Names are cold data (traces and
    /// error messages only), so they live here rather than inside every
    /// `WireInner` — the per-wire hot path never touches a `String`.
    names: RefCell<Vec<Box<str>>>,
}

impl SimCtx {
    /// Creates a fresh context. Usually done via [`Simulator::new`](crate::Simulator::new).
    pub fn new() -> Self {
        SimCtx {
            inner: Rc::new(CtxInner {
                pass: Cell::new(0),
                changes: Cell::new(0),
                cycle: Cell::new(0),
                conflict: RefCell::new(None),
                next_wire: Cell::new(0),
                changed: RefCell::new(Vec::new()),
                names: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Creates a named wire with an initial value.
    pub fn wire<T: Copy + PartialEq + fmt::Debug + 'static>(&self, name: &str, init: T) -> Wire<T> {
        let id = self.inner.next_wire.get();
        self.inner.next_wire.set(id + 1);
        self.inner.names.borrow_mut().push(name.into());
        Wire {
            ctx: self.clone(),
            inner: Rc::new(WireInner {
                id,
                value: Cell::new(init),
                driven_pass: Cell::new(u64::MAX),
            }),
        }
    }

    /// Begins a new delta pass; resets the change counter.
    ///
    /// The simulator calls this internally; testbench code calls it before
    /// driving external stimulus between steps, so that a changed stimulus
    /// value is not mistaken for a multi-driver conflict.
    pub fn begin_pass(&self) {
        self.inner.pass.set(self.inner.pass.get().wrapping_add(1));
        self.inner.changes.set(0);
        self.inner.changed.borrow_mut().clear();
    }

    /// Number of wire changes recorded in the current pass.
    pub(crate) fn changes(&self) -> u64 {
        self.inner.changes.get()
    }

    /// Total wires created so far (wire ids are `0..wire_count()`).
    pub fn wire_count(&self) -> u32 {
        self.inner.next_wire.get()
    }

    /// Number of entries in the current pass's changed-wire log.
    pub(crate) fn changed_len(&self) -> usize {
        self.inner.changed.borrow().len()
    }

    /// Copies changed-wire ids logged since position `from` into `out`.
    pub(crate) fn changed_since(&self, from: usize, out: &mut Vec<WireId>) {
        out.extend_from_slice(&self.inner.changed.borrow()[from..]);
    }

    pub(crate) fn set_cycle(&self, cycle: u64) {
        self.inner.cycle.set(cycle);
    }

    /// Current cycle as seen by the wires (for error reporting).
    pub fn cycle(&self) -> u64 {
        self.inner.cycle.get()
    }

    pub(crate) fn take_conflict(&self) -> Option<SimError> {
        self.inner.conflict.borrow_mut().take()
    }

    fn record_change(&self, wire: WireId) {
        self.inner.changes.set(self.inner.changes.get() + 1);
        self.inner.changed.borrow_mut().push(wire);
    }

    fn record_conflict(&self, wire: WireId) {
        let mut slot = self.inner.conflict.borrow_mut();
        if slot.is_none() {
            *slot = Some(SimError::DoubleDrive {
                wire: self.wire_name(wire),
                cycle: self.inner.cycle.get(),
            });
        }
    }

    /// The name `wire` was created with (traces and error messages).
    pub fn wire_name(&self, wire: WireId) -> String {
        self.inner
            .names
            .borrow()
            .get(wire as usize)
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("wire#{wire}"))
    }
}

impl Default for SimCtx {
    fn default() -> Self {
        Self::new()
    }
}

struct WireInner<T> {
    id: WireId,
    value: Cell<T>,
    /// Pass id during which this wire was last driven, used to detect
    /// multiple conflicting drivers within one pass.
    driven_pass: Cell<u64>,
}

/// A combinational net carrying a `Copy` value.
///
/// Cloning a `Wire` yields another handle onto the same net, so a producer
/// module and a consumer module each hold a clone.
pub struct Wire<T: Copy + PartialEq + fmt::Debug + 'static> {
    ctx: SimCtx,
    inner: Rc<WireInner<T>>,
}

impl<T: Copy + PartialEq + fmt::Debug + 'static> Clone for Wire<T> {
    fn clone(&self) -> Self {
        Wire {
            ctx: self.ctx.clone(),
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: Copy + PartialEq + fmt::Debug + 'static> Wire<T> {
    /// Reads the current value of the net.
    #[inline]
    pub fn get(&self) -> T {
        self.inner.value.get()
    }

    /// Drives a value onto the net.
    ///
    /// Driving the same value repeatedly is allowed (idempotent evaluation);
    /// driving a *different* value twice within the same delta pass records
    /// a [`SimError::DoubleDrive`] that the simulator surfaces at the end of
    /// the pass.
    pub fn drive(&self, value: T) {
        let pass = self.ctx.inner.pass.get();
        let prev = self.inner.value.get();
        if prev != value {
            if self.inner.driven_pass.get() == pass {
                // A different driver already set a different value this pass.
                self.ctx.record_conflict(self.inner.id);
            }
            self.inner.value.set(value);
            self.ctx.record_change(self.inner.id);
        }
        self.inner.driven_pass.set(pass);
    }

    /// Name given at construction (used in traces and error messages).
    ///
    /// Names live in a context-owned side table indexed by [`WireId`], so
    /// this is a lookup producing an owned `String` — cheap for the cold
    /// paths that need it, free for the hot paths that don't.
    pub fn name(&self) -> String {
        self.ctx.wire_name(self.inner.id)
    }

    /// This wire's id, for use in [`Sensitivity`](crate::Sensitivity)
    /// declarations.
    pub fn id(&self) -> WireId {
        self.inner.id
    }
}

impl<T: Copy + PartialEq + fmt::Debug + 'static> fmt::Debug for Wire<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Wire({} = {:?})",
            self.ctx.wire_name(self.inner.id),
            self.inner.value.get()
        )
    }
}

/// A bank-of-flip-flops register: next value staged with [`Reg::set`], made
/// architectural by [`Reg::tick`] during the commit phase.
#[derive(Debug, Clone)]
pub struct Reg<T: Copy> {
    q: T,
    d: T,
}

impl<T: Copy> Reg<T> {
    /// Creates a register holding `init` (also the reset value of `d`).
    pub fn new(init: T) -> Self {
        Reg { q: init, d: init }
    }

    /// Current (architectural) value — the flip-flop output `Q`.
    #[inline]
    pub fn q(&self) -> T {
        self.q
    }

    /// Stages the next value — the flip-flop input `D`. May be called any
    /// number of times per cycle; the last staged value wins, mirroring the
    /// last assignment in a clocked HDL process.
    #[inline]
    pub fn set(&mut self, value: T) {
        self.d = value;
    }

    /// Latches `D` into `Q`. Call exactly once per cycle, from
    /// [`Module::commit`](crate::Module::commit).
    #[inline]
    pub fn tick(&mut self) {
        self.q = self.d;
    }

    /// Resets both `Q` and the staged `D` to `value`.
    pub fn reset(&mut self, value: T) {
        self.q = value;
        self.d = value;
    }
}

impl<T: Copy + Default> Default for Reg<T> {
    fn default() -> Self {
        Reg::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_reads_back_driven_value() {
        let ctx = SimCtx::new();
        let w = ctx.wire("w", 0u32);
        ctx.begin_pass();
        w.drive(5);
        assert_eq!(w.get(), 5);
        assert_eq!(ctx.changes(), 1);
    }

    #[test]
    fn redriving_same_value_is_not_a_change() {
        let ctx = SimCtx::new();
        let w = ctx.wire("w", 7u32);
        ctx.begin_pass();
        w.drive(7);
        assert_eq!(ctx.changes(), 0);
        assert!(ctx.take_conflict().is_none());
    }

    #[test]
    fn conflicting_drivers_in_one_pass_are_detected() {
        let ctx = SimCtx::new();
        let w = ctx.wire("bus", 0u32);
        ctx.begin_pass();
        w.drive(1);
        w.drive(2);
        let err = ctx.take_conflict().expect("conflict expected");
        assert!(matches!(err, SimError::DoubleDrive { ref wire, .. } if wire == "bus"));
    }

    #[test]
    fn same_driver_may_update_across_passes() {
        let ctx = SimCtx::new();
        let w = ctx.wire("w", 0u32);
        ctx.begin_pass();
        w.drive(1);
        ctx.begin_pass();
        w.drive(2);
        assert!(ctx.take_conflict().is_none());
        assert_eq!(w.get(), 2);
    }

    #[test]
    fn cloned_wires_share_the_net() {
        let ctx = SimCtx::new();
        let a = ctx.wire("n", 0u8);
        let b = a.clone();
        ctx.begin_pass();
        a.drive(9);
        assert_eq!(b.get(), 9);
        assert_eq!(b.name(), "n");
    }

    #[test]
    fn reg_latches_on_tick_only() {
        let mut r = Reg::new(0u32);
        r.set(42);
        assert_eq!(r.q(), 0, "Q must not change before the clock edge");
        r.tick();
        assert_eq!(r.q(), 42);
    }

    #[test]
    fn reg_last_staged_value_wins() {
        let mut r = Reg::new(0u32);
        r.set(1);
        r.set(2);
        r.tick();
        assert_eq!(r.q(), 2);
    }

    #[test]
    fn reg_holds_value_without_set() {
        let mut r = Reg::new(3u32);
        r.tick();
        assert_eq!(r.q(), 3, "a register re-latches its staged value");
    }

    #[test]
    fn reg_reset_clears_both_stages() {
        let mut r = Reg::new(0u32);
        r.set(5);
        r.reset(9);
        r.tick();
        assert_eq!(r.q(), 9);
    }
}
