//! The unbuffered baseline system.

use std::collections::VecDeque;

use smache::arch::kernel::Kernel;
use smache::cost::{FreqModel, SynthesisModel};
use smache::error::CoreError;
use smache::system::metrics::DesignMetrics;
use smache::CoreResult;
use smache_mem::{Dram, DramConfig, Word};
use smache_sim::ResourceUsage;
use smache_stencil::{resolve, Access, BoundarySpec, GridSpec, StencilShape};

/// Tunables of the baseline simulation.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// DRAM timing/geometry (use the same as the Smache run for a fair
    /// Fig. 2 comparison).
    pub dram: DramConfig,
    /// Elements whose reads may be in flight concurrently. The paper's
    /// baseline is a simple design: a small gather buffer (2) reproduces
    /// its ~5.3 cycles/point; 1 models a fully serial FSM.
    pub max_inflight_elements: usize,
    /// Watchdog limit, cycles per element per instance.
    pub watchdog_cycles_per_element: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            dram: DramConfig::default(),
            max_inflight_elements: 2,
            watchdog_cycles_per_element: 256,
        }
    }
}

/// One tuple slot of an in-flight element (positional: one per shape point).
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Boundary-skipped point (never read; masked out for the kernel).
    Missing,
    /// Value already known (constant boundary).
    Value(Word),
    /// Awaiting a DRAM response.
    Await,
    /// Filled by a response.
    Filled(Word),
}

/// An element whose stencil reads are in flight.
#[derive(Debug)]
struct Pending {
    e: usize,
    slots: Vec<Slot>,
    /// Next slot a response fills (responses arrive in issue order).
    fill_ptr: usize,
}

impl Pending {
    fn complete(&self) -> bool {
        self.slots.iter().all(|s| !matches!(s, Slot::Await))
    }

    /// Positional values and presence mask for the kernel.
    fn values(&self) -> (Vec<Word>, u64) {
        let mut mask = 0u64;
        let values = self
            .slots
            .iter()
            .enumerate()
            .map(|(p, s)| match s {
                Slot::Missing => 0,
                Slot::Value(w) | Slot::Filled(w) => {
                    mask |= 1 << p;
                    *w
                }
                Slot::Await => unreachable!("values() on incomplete element"),
            })
            .collect();
        (values, mask)
    }
}

/// What a completed baseline run produced.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// The final grid contents.
    pub output: Vec<Word>,
    /// Fig. 2 metrics.
    pub metrics: DesignMetrics,
}

/// The cycle-accurate baseline system.
pub struct BaselineSystem {
    grid: GridSpec,
    bounds: BoundarySpec,
    shape: StencilShape,
    kernel: Box<dyn Kernel>,
    config: BaselineConfig,
    dram: Dram,
    n: usize,
    base: [usize; 2],
    in_region: usize,

    /// Next element to start issuing reads for.
    issue_elem: usize,
    /// Reads still to issue for the element currently being issued:
    /// grid addresses in tuple order.
    issue_reads: VecDeque<usize>,
    inflight: VecDeque<Pending>,
    /// Kernel pipeline: (remaining latency, element, result).
    kernel_pipe: VecDeque<(u64, usize, Word)>,
    write_queue: VecDeque<(usize, Word)>,
    writes_done: usize,
    instances_left: u64,
    cycle: u64,
    read_staged: bool,
}

impl BaselineSystem {
    /// Builds the baseline for a problem.
    pub fn new(
        grid: GridSpec,
        shape: StencilShape,
        bounds: BoundarySpec,
        kernel: Box<dyn Kernel>,
        config: BaselineConfig,
    ) -> CoreResult<Self> {
        if shape.ndim() != grid.ndim() || bounds.ndim() != grid.ndim() {
            return Err(CoreError::Config(
                "shape/bounds dimensionality mismatch".into(),
            ));
        }
        if config.max_inflight_elements == 0 {
            return Err(CoreError::Config(
                "max_inflight_elements must be >= 1".into(),
            ));
        }
        if kernel.latency() == 0 {
            return Err(CoreError::KernelLatencyZero);
        }
        let n = grid.len();
        let row = config.dram.row_words;
        let region = n.div_ceil(row) * row;
        let dram = Dram::new(2 * region + row, config.dram)?;
        Ok(BaselineSystem {
            grid,
            bounds,
            shape,
            kernel,
            config,
            dram,
            n,
            base: [0, region],
            in_region: 0,
            issue_elem: 0,
            issue_reads: VecDeque::new(),
            inflight: VecDeque::new(),
            kernel_pipe: VecDeque::new(),
            write_queue: VecDeque::new(),
            writes_done: 0,
            instances_left: 0,
            cycle: 0,
            read_staged: false,
        })
    }

    /// Prepares the pending entry and read list for element `e`.
    fn open_element(&mut self, e: usize) -> CoreResult<()> {
        let coords = self.grid.coords(e)?;
        let mut slots = Vec::with_capacity(self.shape.len());
        for off in self.shape.offsets() {
            match resolve(&self.grid, &self.bounds, &coords, off)? {
                Access::Inside(idx) => {
                    slots.push(Slot::Await);
                    self.issue_reads.push_back(idx);
                }
                Access::Skip => slots.push(Slot::Missing),
                Access::Constant(v) => slots.push(Slot::Value(v)),
            }
        }
        self.inflight.push_back(Pending {
            e,
            slots,
            fill_ptr: 0,
        });
        Ok(())
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) -> CoreResult<()> {
        // Open a new element's gather when there is room and its reads can
        // start queueing (one issue stream, element order). The open costs
        // the FSM one cycle — the paper's baseline is a simple state
        // machine that computes the neighbour addresses before issuing,
        // which is what puts it at ~5 cycles per point rather than 4.
        let mut just_opened = false;
        if self.issue_reads.is_empty()
            && self.issue_elem < self.n
            && self.inflight.len() < self.config.max_inflight_elements
        {
            let e = self.issue_elem;
            self.open_element(e)?;
            self.issue_elem += 1;
            just_opened = true;
        }

        // Stage the read channel with the next neighbour address.
        let in_base = self.base[self.in_region];
        if just_opened {
            self.dram.cancel_read();
            self.read_staged = false;
        } else if let Some(&addr) = self.issue_reads.front() {
            self.dram.hold_read(in_base + addr)?;
            self.read_staged = true;
        } else {
            self.dram.cancel_read();
            self.read_staged = false;
        }

        // Stage the write channel.
        if let Some(&(addr, w)) = self.write_queue.front() {
            self.dram.hold_write(addr, w)?;
        } else {
            self.dram.cancel_write();
        }

        let report = self.dram.tick();
        if report.read_accepted.is_some() {
            debug_assert!(self.read_staged);
            self.issue_reads.pop_front();
        }
        if let Some((_, w)) = report.response {
            // Responses arrive in issue order: fill the front-most element
            // that still awaits data.
            let entry = self
                .inflight
                .iter_mut()
                .find(|p| !p.complete())
                .ok_or_else(|| CoreError::Config("response with no awaiting element".into()))?;
            while !matches!(entry.slots[entry.fill_ptr], Slot::Await) {
                entry.fill_ptr += 1;
            }
            entry.slots[entry.fill_ptr] = Slot::Filled(w);
            entry.fill_ptr += 1;
        }
        if report.write_accepted.is_some() {
            self.write_queue.pop_front();
            self.writes_done += 1;
        }

        // Completed front elements enter the kernel pipeline (one per
        // cycle — a single kernel instance).
        if self.inflight.front().is_some_and(|p| p.complete()) {
            let p = self.inflight.pop_front().expect("checked front");
            let (values, mask) = p.values();
            let result = self.kernel.apply(&values, mask);
            self.kernel_pipe
                .push_back((self.kernel.latency(), p.e, result));
        }

        for entry in self.kernel_pipe.iter_mut() {
            entry.0 -= 1;
        }
        while self.kernel_pipe.front().is_some_and(|e| e.0 == 0) {
            let (_, e, w) = self.kernel_pipe.pop_front().expect("checked front");
            let out_base = self.base[1 - self.in_region];
            self.write_queue.push_back((out_base + e, w));
        }

        // Instance boundary.
        if self.instances_left > 0
            && self.writes_done == self.n
            && self.issue_elem == self.n
            && self.inflight.is_empty()
            && self.kernel_pipe.is_empty()
            && self.write_queue.is_empty()
        {
            self.instances_left -= 1;
            self.writes_done = 0;
            self.issue_elem = 0;
            self.in_region = 1 - self.in_region;
        }

        self.cycle += 1;
        Ok(())
    }

    /// Resets all run state (called automatically by [`BaselineSystem::run`]).
    pub fn reset(&mut self) {
        self.in_region = 0;
        self.issue_elem = 0;
        self.issue_reads.clear();
        self.inflight.clear();
        self.kernel_pipe.clear();
        self.write_queue.clear();
        self.writes_done = 0;
        self.cycle = 0;
        self.read_staged = false;
    }

    /// Loads `input`, runs `instances` work-instances, returns the output
    /// grid and metrics (counters restart per run).
    pub fn run(&mut self, input: &[Word], instances: u64) -> CoreResult<BaselineReport> {
        if input.len() != self.n {
            return Err(CoreError::Config(format!(
                "input length {} does not match grid size {}",
                input.len(),
                self.n
            )));
        }
        self.reset();
        self.dram.preload(self.base[0], input)?;
        self.dram.reset_stats();
        self.instances_left = instances;

        let budget = (instances + 2)
            * (self.n as u64 * self.config.watchdog_cycles_per_element + 512)
            + 4096;
        while self.instances_left > 0 {
            if self.cycle >= budget {
                return Err(CoreError::Sim(smache_sim::SimError::Watchdog {
                    budget,
                    waiting_for: "baseline run completion".into(),
                }));
            }
            self.step()?;
        }

        let out_region = (instances % 2) as usize;
        let output = self.dram.dump(self.base[out_region], self.n)?;
        Ok(BaselineReport {
            output,
            metrics: self.metrics(instances),
        })
    }

    fn metrics(&self, instances: u64) -> DesignMetrics {
        let n = self.n as u64;
        let n_points = self.shape.len() as u64;
        let kernel_res = self.kernel.resources();
        DesignMetrics {
            name: "Baseline".into(),
            cycles: self.cycle,
            fmax_mhz: FreqModel.baseline_fmax(n),
            dram: *self.dram.stats(),
            ops: self.shape.ops_per_point() * n * instances,
            resources: ResourceUsage {
                alms: SynthesisModel.baseline_alms(n, n_points, kernel_res.alms),
                registers: SynthesisModel.baseline_registers(n, n_points, 32),
                bram_bits: 0,
                dsps: kernel_res.dsps,
            },
            faults: smache_mem::FaultCounters::default(),
        }
    }

    /// Synthesised resources of the baseline design.
    pub fn resources(&self) -> ResourceUsage {
        self.metrics(0).resources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smache::arch::kernel::AverageKernel;
    use smache::functional::golden::golden_run;

    fn paper_baseline() -> BaselineSystem {
        BaselineSystem::new(
            GridSpec::d2(11, 11).unwrap(),
            StencilShape::four_point_2d(),
            BoundarySpec::paper_case(),
            Box::new(AverageKernel),
            BaselineConfig::default(),
        )
        .unwrap()
    }

    fn golden(input: &[Word], instances: u64) -> Vec<Word> {
        golden_run(
            &GridSpec::d2(11, 11).unwrap(),
            &BoundarySpec::paper_case(),
            &StencilShape::four_point_2d(),
            &AverageKernel,
            input,
            instances,
        )
        .unwrap()
    }

    #[test]
    fn single_instance_matches_golden() {
        let mut sys = paper_baseline();
        let input: Vec<Word> = (0..121).map(|i| i * 3 + 1).collect();
        let report = sys.run(&input, 1).unwrap();
        assert_eq!(report.output, golden(&input, 1));
    }

    #[test]
    fn many_instances_match_golden() {
        let mut sys = paper_baseline();
        let input: Vec<Word> = (0..121).map(|i| (i * 17) % 103).collect();
        let report = sys.run(&input, 7).unwrap();
        assert_eq!(report.output, golden(&input, 7));
    }

    #[test]
    fn hundred_instances_land_in_paper_cycle_regime() {
        let mut sys = paper_baseline();
        let input: Vec<Word> = (0..121).collect();
        let report = sys.run(&input, 100).unwrap();
        // Paper: 64001 cycles. Our pipelined-but-small-gather model must
        // land in the same regime (±25%).
        let cycles = report.metrics.cycles as f64;
        assert!(
            (cycles - 64001.0).abs() / 64001.0 < 0.25,
            "cycles {cycles} vs paper 64001"
        );
        // Paper traffic: 236.3 KB.
        let kb = report.metrics.traffic_kb();
        assert!(
            (kb - 236.3).abs() / 236.3 < 0.05,
            "traffic {kb} KB vs paper 236.3"
        );
    }

    #[test]
    fn redundant_reads_are_really_issued() {
        let mut sys = paper_baseline();
        let input: Vec<Word> = (0..121).collect();
        let report = sys.run(&input, 1).unwrap();
        // 4 reads per interior/top/bottom point, 3 per open-edge point:
        // 484 − 22 = 462 reads, plus 121 writes.
        assert_eq!(report.metrics.dram.reads, 462);
        assert_eq!(report.metrics.dram.writes, 121);
    }

    #[test]
    fn serial_configuration_is_slower() {
        let input: Vec<Word> = (0..121).collect();
        let mut pipelined = paper_baseline();
        let fast = pipelined.run(&input, 5).unwrap();
        let mut serial = BaselineSystem::new(
            GridSpec::d2(11, 11).unwrap(),
            StencilShape::four_point_2d(),
            BoundarySpec::paper_case(),
            Box::new(AverageKernel),
            BaselineConfig {
                max_inflight_elements: 1,
                ..BaselineConfig::default()
            },
        )
        .unwrap();
        let slow = serial.run(&input, 5).unwrap();
        assert_eq!(slow.output, fast.output);
        assert!(slow.metrics.cycles > fast.metrics.cycles);
    }

    #[test]
    fn resources_match_paper_prose() {
        let sys = paper_baseline();
        let r = sys.resources();
        assert_eq!(r.alms, 79);
        assert_eq!(r.registers, 262);
        assert_eq!(r.bram_bits, 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(BaselineSystem::new(
            GridSpec::d2(4, 4).unwrap(),
            StencilShape::four_point_2d(),
            BoundarySpec::all_open(1).unwrap(),
            Box::new(AverageKernel),
            BaselineConfig::default(),
        )
        .is_err());
        assert!(BaselineSystem::new(
            GridSpec::d2(4, 4).unwrap(),
            StencilShape::four_point_2d(),
            BoundarySpec::all_open(2).unwrap(),
            Box::new(AverageKernel),
            BaselineConfig {
                max_inflight_elements: 0,
                ..BaselineConfig::default()
            },
        )
        .is_err());
    }

    #[test]
    fn wrong_input_length_rejected() {
        let mut sys = paper_baseline();
        assert!(sys.run(&[0; 3], 1).is_err());
    }
}
