//! # smache-baseline — the paper's comparison design
//!
//! A cycle-accurate model of the baseline HDL design of §IV: **no stencil
//! buffering at all**. Every grid point reads each of its stencil
//! neighbours directly from global memory — "each grid-point requires 4
//! words to be read from the global memory, which is 4× more than what is
//! required for the Smache architecture" — then computes the kernel and
//! writes the result back.
//!
//! The design shares the DRAM model, kernels, metrics and golden reference
//! with the Smache system, so the Fig. 2 comparison is apples-to-apples:
//! same workload, same memory substrate, same measurement.

#![warn(missing_docs)]

pub mod system;

pub use system::{BaselineConfig, BaselineReport, BaselineSystem};
