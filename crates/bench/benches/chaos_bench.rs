//! Criterion group: simulation throughput vs injected stall fraction.
//!
//! Each point runs the paper workload under a fixed-seed fault plan with a
//! different stall-storm probability; the measured wall-clock tracks how
//! much simulated work the chaos adds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smache::system::smache_system::SystemConfig;
use smache::HybridMode;
use smache_bench::workloads::paper_problem;
use smache_mem::{ChaosProfile, FaultPlan};

fn chaos_storm_ladder(c: &mut Criterion) {
    let workload = paper_problem(11, 11, 10);
    let input = workload.ramp_input();
    let mut group = c.benchmark_group("chaos_storm_ladder_11x11");
    group.sample_size(10);
    for prob in [0.0, 0.05, 0.2] {
        let profile = ChaosProfile {
            stall_storm_prob: prob,
            stall_storm_max: 12,
            ..ChaosProfile::none()
        };
        group.bench_function(BenchmarkId::new("storm", format!("p{prob}")), |b| {
            b.iter(|| {
                let mut system = workload.smache_with(
                    HybridMode::default(),
                    SystemConfig {
                        fault_plan: FaultPlan::new(7, profile),
                        ..SystemConfig::default()
                    },
                );
                let report = system.run(&input, workload.instances).expect("absorbed");
                report.metrics.cycles
            })
        });
    }
    group.finish();
}

fn chaos_named_profiles(c: &mut Criterion) {
    let workload = paper_problem(11, 11, 10);
    let input = workload.ramp_input();
    let mut group = c.benchmark_group("chaos_profiles_11x11");
    group.sample_size(10);
    for (label, profile) in [
        ("off", ChaosProfile::none()),
        ("jitter", ChaosProfile::jitter()),
        ("drain", ChaosProfile::drain()),
        ("heavy", ChaosProfile::heavy()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut system = workload.smache_with(
                    HybridMode::default(),
                    SystemConfig {
                        fault_plan: FaultPlan::new(7, profile),
                        ..SystemConfig::default()
                    },
                );
                let report = system.run(&input, workload.instances).expect("absorbed");
                report.metrics.cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, chaos_storm_ladder, chaos_named_profiles);
criterion_main!(benches);
