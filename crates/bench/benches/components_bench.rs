//! Criterion micro-benchmarks of the Smache components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smache::arch::kernel::AverageKernel;
use smache::arch::stream_buffer::StreamBuffer;
use smache::config::{Algorithm1, PlanStrategy};
use smache::functional::golden::golden_run;
use smache::functional::model::FunctionalSmache;
use smache::{HybridMode, SmacheBuilder};
use smache_mem::{Dram, DramConfig};
use smache_stencil::GridSpec;

/// Stream-buffer shift throughput: Case-R registers vs Case-H hybrid.
fn stream_buffer_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_buffer_shift_64x64");
    for (label, hybrid) in [
        ("case_r", HybridMode::CaseR),
        ("case_h", HybridMode::default()),
    ] {
        let plan = SmacheBuilder::new(GridSpec::d2(64, 64).expect("valid"))
            .hybrid(hybrid)
            .plan()
            .expect("plan");
        group.bench_function(label, |b| {
            b.iter_batched(
                || StreamBuffer::from_plan(&plan).expect("buffer"),
                |mut sb| {
                    for w in 0..4096u64 {
                        sb.stage_shift(w);
                        sb.tick().expect("tick");
                    }
                    sb.pushed()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Planning strategies over the paper problem.
fn planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning_64x64");
    for (label, strategy) in [
        (
            "per_range_greedy",
            PlanStrategy::PerRange(Algorithm1::Greedy),
        ),
        ("per_range_exact", PlanStrategy::PerRange(Algorithm1::Exact)),
        ("global_window", PlanStrategy::GlobalWindow),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                SmacheBuilder::new(GridSpec::d2(64, 64).expect("valid"))
                    .strategy(strategy)
                    .plan()
                    .expect("plan")
                    .capacity
            })
        });
    }
    group.finish();
}

/// The verification stack: golden vs functional vs cycle-accurate, same
/// workload — shows what each level of fidelity costs.
fn fidelity_stack(c: &mut Criterion) {
    let dims = 32usize;
    let builder = || SmacheBuilder::new(GridSpec::d2(dims, dims).expect("valid"));
    let plan = builder().plan().expect("plan");
    let input: Vec<u64> = (0..(dims * dims) as u64).collect();
    let instances = 4u64;

    let mut group = c.benchmark_group("fidelity_32x32_4inst");
    group.bench_function("golden", |b| {
        b.iter(|| {
            golden_run(
                &plan.grid,
                &plan.bounds,
                &plan.shape,
                &AverageKernel,
                &input,
                instances,
            )
            .expect("golden")
            .len()
        })
    });
    group.bench_function("functional", |b| {
        b.iter(|| {
            let mut f = FunctionalSmache::new(plan.clone());
            f.run(&AverageKernel, &input, instances)
                .expect("functional")
                .len()
        })
    });
    group.bench_function("cycle_accurate", |b| {
        b.iter(|| {
            let mut sys = builder().build().expect("system");
            sys.run(&input, instances).expect("run").metrics.cycles
        })
    });
    group.finish();
}

/// DRAM model throughput: sequential stream vs random same-bank thrash.
fn dram_patterns(c: &mut Criterion) {
    let cfg = DramConfig::default();
    let words = cfg.row_words * cfg.num_banks * 8;
    let mut group = c.benchmark_group("dram_4096_reads");
    for (label, stride) in [
        ("sequential", 1usize),
        ("row_thrash", cfg.row_words * cfg.num_banks),
    ] {
        group.bench_with_input(BenchmarkId::new("pattern", label), &stride, |b, &stride| {
            b.iter(|| {
                let mut dram = Dram::new(words, cfg).expect("dram");
                let mut issued = 0usize;
                let mut addr = 0usize;
                while issued < 4096 {
                    dram.hold_read(addr % words).expect("in range");
                    if dram.tick().read_accepted.is_some() {
                        issued += 1;
                        addr += stride;
                    }
                }
                dram.cycle()
            })
        });
    }
    group.finish();
}

/// Range analysis: the signature fast path vs the naive per-element scan.
fn range_analysis(c: &mut Criterion) {
    use smache_stencil::{split_ranges, split_ranges_naive, BoundarySpec, StencilShape};
    let grid = GridSpec::d2(256, 256).expect("valid");
    let bounds = BoundarySpec::paper_case();
    let shape = StencilShape::four_point_2d();
    let mut group = c.benchmark_group("split_ranges_256x256");
    group.sample_size(10);
    group.bench_function("signature_fast_path", |b| {
        b.iter(|| split_ranges(&grid, &bounds, &shape).expect("split").len())
    });
    group.bench_function("naive_reference", |b| {
        b.iter(|| {
            split_ranges_naive(&grid, &bounds, &shape)
                .expect("split")
                .len()
        })
    });
    group.finish();
}

/// Parallel compositions: multilane and cascade against the single-lane
/// reference on the same physics.
fn compositions(c: &mut Criterion) {
    use smache::arch::kernel::AverageKernel;
    use smache::system::cascade::CascadeSystem;
    use smache::system::multilane::MultilaneSystem;
    use smache::system::smache_system::SystemConfig;
    use smache_stencil::BoundarySpec;

    let grid = GridSpec::d2(32, 32).expect("valid");
    let bounds = BoundarySpec::all_open(2).expect("bounds");
    let plan = || {
        SmacheBuilder::new(grid.clone())
            .boundaries(bounds.clone())
            .plan()
            .expect("plan")
    };
    let input: Vec<u64> = (0..1024).collect();

    let mut group = c.benchmark_group("compositions_32x32_8steps");
    group.sample_size(10);
    group.bench_function("single_lane_8_passes", |b| {
        b.iter(|| {
            let mut sys =
                MultilaneSystem::new(plan(), Box::new(AverageKernel), 1, SystemConfig::default())
                    .expect("system");
            sys.run(&input, 8).expect("run").metrics.cycles
        })
    });
    group.bench_function("four_lanes_8_passes", |b| {
        b.iter(|| {
            let mut sys =
                MultilaneSystem::new(plan(), Box::new(AverageKernel), 4, SystemConfig::default())
                    .expect("system");
            sys.run(&input, 8).expect("run").metrics.cycles
        })
    });
    group.bench_function("cascade4_2_passes", |b| {
        b.iter(|| {
            let mut sys =
                CascadeSystem::new(plan(), Box::new(AverageKernel), 4, SystemConfig::default())
                    .expect("system");
            sys.run(&input, 2).expect("run").metrics.cycles
        })
    });
    group.finish();
}

/// Event-driven vs brute-force scheduling on the two workloads that bound
/// the scheduler's win: a deep combinational ripple registered in the
/// worst possible order (naive loop needs one full pass per stage), and
/// the AXI-wrapped paper system (two sequential modules, where the win is
/// only the redundant confirmation pass).
fn scheduler(c: &mut Criterion) {
    use smache::system::axi::AxiSmache;
    use smache_sim::{Module, Sensitivity, SimMode, Simulator, StreamLink, StreamSink, Wire};

    struct Driver {
        head: Wire<u64>,
    }
    impl Module for Driver {
        fn name(&self) -> &str {
            "driver"
        }
        fn eval(&mut self, cycle: u64) {
            self.head.drive(cycle);
        }
        fn commit(&mut self, _cycle: u64) {}
        fn sensitivity(&self) -> Option<Sensitivity> {
            Some(Sensitivity::sequential(vec![], vec![self.head.id()]))
        }
    }
    struct Stage {
        name: String,
        input: Wire<u64>,
        out: Wire<u64>,
    }
    impl Module for Stage {
        fn name(&self) -> &str {
            &self.name
        }
        fn eval(&mut self, _cycle: u64) {
            self.out.drive(self.input.get() + 1);
        }
        fn commit(&mut self, _cycle: u64) {}
        fn sensitivity(&self) -> Option<Sensitivity> {
            Some(Sensitivity::combinational(
                vec![self.input.id()],
                vec![self.out.id()],
            ))
        }
    }

    const DEPTH: usize = 32;
    let build_chain = |mode: SimMode| {
        let mut sim = Simulator::with_mode(mode);
        let ctx = sim.ctx().clone();
        let wires: Vec<Wire<u64>> = (0..=DEPTH).map(|i| ctx.wire(&format!("w{i}"), 0)).collect();
        // Deepest stage first: the naive loop propagates one stage per
        // delta pass, so every cycle costs DEPTH+1 full passes.
        for i in (0..DEPTH).rev() {
            sim.add(Box::new(Stage {
                name: format!("s{i}"),
                input: wires[i].clone(),
                out: wires[i + 1].clone(),
            }));
        }
        sim.add(Box::new(Driver {
            head: wires[0].clone(),
        }));
        (sim, wires[DEPTH].clone())
    };

    let mut group = c.benchmark_group("scheduler_chain32_1k_cycles");
    for (label, mode) in [
        ("event_driven", SimMode::EventDriven),
        ("naive", SimMode::Naive),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (mut sim, tail) = build_chain(mode);
                sim.run(1_000).expect("settles");
                tail.get()
            })
        });
    }
    group.finish();

    let input: Vec<u64> = (0..121).collect();
    let mut group = c.benchmark_group("scheduler_axi_11x11");
    group.sample_size(10);
    for (label, mode) in [
        ("event_driven", SimMode::EventDriven),
        ("naive", SimMode::Naive),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = Simulator::with_mode(mode);
                let system = SmacheBuilder::new(GridSpec::d2(11, 11).expect("grid"))
                    .build()
                    .expect("system");
                let link = StreamLink::new(sim.ctx(), "results");
                let axi = AxiSmache::new(system, link.clone(), &input, 1).expect("arm");
                sim.add(Box::new(axi));
                let (sink, buf) = StreamSink::new("consumer", link);
                sim.add(Box::new(sink));
                sim.run_until(100_000, "drain", |_| buf.borrow().len() == 121)
                    .expect("completes")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    stream_buffer_shift,
    planning,
    fidelity_stack,
    dram_patterns,
    range_analysis,
    compositions,
    scheduler
);
criterion_main!(benches);
