//! Telemetry overhead guard.
//!
//! The observability contract (`docs/OBSERVABILITY.md`) promises that a
//! system with no telemetry attached pays one branch per cycle and nothing
//! else. This bench pins that promise with three rungs on the same
//! workload:
//!
//! - `off` — no telemetry attached (the default build, the protected path);
//! - `counters_only` — telemetry attached with the probe event stream
//!   disabled (counters, residency and histograms still accumulate);
//! - `full` — probes and counters both on.
//!
//! The `off` rung should match the pre-telemetry baseline; regressions
//! here mean the zero-overhead gate broke. Alongside the wall-clock
//! comparison, every rung asserts the simulated cycle count is identical —
//! telemetry may cost host time, never simulated time.

use criterion::{criterion_group, criterion_main, Criterion};
use smache::SmacheBuilder;
use smache_sim::TelemetryConfig;
use smache_stencil::GridSpec;

fn paper_system() -> SmacheBuilder {
    SmacheBuilder::new(GridSpec::d2(11, 11).expect("grid"))
}

fn telemetry_overhead(c: &mut Criterion) {
    let input: Vec<u64> = (0..121).collect();
    let instances = 10u64;

    // The guard proper: all three rungs must simulate the same cycles.
    let reference = {
        let mut sys = paper_system().build().expect("system");
        sys.run(&input, instances).expect("run").metrics.cycles
    };

    let mut group = c.benchmark_group("telemetry_11x11_10inst");
    group.bench_function("off", |b| {
        b.iter(|| {
            let mut sys = paper_system().build().expect("system");
            let cycles = sys.run(&input, instances).expect("run").metrics.cycles;
            assert_eq!(cycles, reference, "telemetry-off run must be bit-identical");
            cycles
        })
    });
    group.bench_function("counters_only", |b| {
        b.iter(|| {
            let mut sys = paper_system()
                .telemetry(TelemetryConfig::default())
                .build()
                .expect("system");
            if let Some(tel) = sys.telemetry_mut() {
                tel.probes.set_enabled(false);
            }
            let cycles = sys.run(&input, instances).expect("run").metrics.cycles;
            assert_eq!(cycles, reference, "counters must not change the simulation");
            cycles
        })
    });
    group.bench_function("full", |b| {
        b.iter(|| {
            let mut sys = paper_system()
                .telemetry(TelemetryConfig::default())
                .build()
                .expect("system");
            let cycles = sys.run(&input, instances).expect("run").metrics.cycles;
            assert_eq!(cycles, reference, "probes must not change the simulation");
            cycles
        })
    });
    group.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
