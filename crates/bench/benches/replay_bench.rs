//! Criterion group: control-schedule capture and replay vs full simulation.
//!
//! `capture` measures the one-off cost of recording the control plane;
//! `replay_vs_full` measures a single replay against a single full run;
//! the `batch` pair measures the end-to-end sweep speedup at 8 lanes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smache::system::{BatchOptions, ReplayMode, SmacheSystem};
use smache::HybridMode;
use smache_bench::workloads::paper_problem;

fn capture_and_replay(c: &mut Criterion) {
    let workload = paper_problem(11, 11, 10);
    let input = workload.ramp_input();
    let mut group = c.benchmark_group("replay_11x11");
    group.sample_size(10);

    group.bench_function("full_sim", |b| {
        b.iter(|| {
            let mut system = workload.smache(HybridMode::default());
            system.run(&input, workload.instances).expect("run").stats
        })
    });
    group.bench_function("capture", |b| {
        b.iter(|| {
            let mut system = workload.smache(HybridMode::default());
            system
                .run_captured(&input, workload.instances)
                .expect("capture")
                .0
                .stats
        })
    });
    let mut system = workload.smache(HybridMode::default());
    let (_, schedule) = system
        .run_captured(&input, workload.instances)
        .expect("capture");
    group.bench_function("replay", |b| {
        b.iter(|| {
            schedule
                .replay(&smache::arch::kernel::AverageKernel, &input)
                .expect("replay")
                .stats
        })
    });
    group.finish();
}

fn batch_sweep(c: &mut Criterion) {
    let workload = paper_problem(11, 11, 10);
    let mut group = c.benchmark_group("replay_batch_11x11");
    group.sample_size(10);
    for (label, mode) in [("full", ReplayMode::Off), ("replay", ReplayMode::Auto)] {
        group.bench_function(BenchmarkId::new("sweep8", label), |b| {
            b.iter(|| {
                let jobs = workload.batch_jobs(0..8, HybridMode::default());
                let report =
                    SmacheSystem::run_batch(jobs, BatchOptions::new().threads(2).replay(mode));
                assert_eq!(report.succeeded(), 8);
                report.aggregate
            })
        });
    }
    group.finish();
}

criterion_group!(benches, capture_and_replay, batch_sweep);
criterion_main!(benches);
