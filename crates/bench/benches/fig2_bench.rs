//! Criterion benchmark regenerating the Fig. 2 comparison.
//!
//! Each benchmark runs the complete cycle-accurate simulation of one
//! design on the paper's workload; the interesting output is the custom
//! metric lines printed once per design (cycles, traffic), while Criterion
//! tracks host-side simulation throughput for regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use smache::HybridMode;
use smache_baseline::BaselineConfig;
use smache_bench::workloads::paper_problem;

fn fig2_smache(c: &mut Criterion) {
    let workload = paper_problem(11, 11, 100);
    let input = workload.ramp_input();

    // Print the headline numbers once, so `cargo bench` output documents
    // the experiment alongside the timing.
    let mut sys = workload.smache(HybridMode::default());
    let report = sys.run(&input, workload.instances).expect("run");
    println!(
        "[fig2] smache-h: {} cycles, {:.1} KB DRAM, {:.1} us, {:.1} MOPS",
        report.metrics.cycles,
        report.metrics.traffic_kb(),
        report.metrics.exec_us(),
        report.metrics.mops()
    );

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("smache_11x11_100inst", |b| {
        b.iter(|| {
            let mut sys = workload.smache(HybridMode::default());
            sys.run(&input, workload.instances)
                .expect("run")
                .metrics
                .cycles
        })
    });
    group.finish();
}

fn fig2_baseline(c: &mut Criterion) {
    let workload = paper_problem(11, 11, 100);
    let input = workload.ramp_input();

    let mut sys = workload.baseline(BaselineConfig::default());
    let report = sys.run(&input, workload.instances).expect("run");
    println!(
        "[fig2] baseline: {} cycles, {:.1} KB DRAM, {:.1} us, {:.1} MOPS",
        report.metrics.cycles,
        report.metrics.traffic_kb(),
        report.metrics.exec_us(),
        report.metrics.mops()
    );

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("baseline_11x11_100inst", |b| {
        b.iter(|| {
            let mut sys = workload.baseline(BaselineConfig::default());
            sys.run(&input, workload.instances)
                .expect("run")
                .metrics
                .cycles
        })
    });
    group.finish();
}

criterion_group!(benches, fig2_smache, fig2_baseline);
criterion_main!(benches);
