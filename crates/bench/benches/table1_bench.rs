//! Criterion benchmark regenerating Table I (plan analysis + cost models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smache::cost::{CostEstimate, SynthesisModel};
use smache::{HybridMode, SmacheBuilder};
use smache_stencil::GridSpec;

fn table1_rows(c: &mut Criterion) {
    // Print the four rows once so the bench log carries the experiment.
    for (dim, hybrid, label) in [
        (11usize, HybridMode::CaseR, "11x11r"),
        (11, HybridMode::default(), "11x11h"),
        (1024, HybridMode::CaseR, "1024x1024r"),
        (1024, HybridMode::default(), "1024x1024h"),
    ] {
        let plan = SmacheBuilder::new(GridSpec::d2(dim, dim).expect("valid"))
            .hybrid(hybrid)
            .plan()
            .expect("plan");
        let est = CostEstimate.memory(&plan);
        let act = SynthesisModel.memory(&plan);
        println!(
            "[table1] {label}: est Rsm={} Bsm={} Bsc={} | act Rsm={} Bsm={} Bsc={} Rtot={} Btot={}",
            est.r_stream,
            est.b_stream,
            est.b_static,
            act.r_stream,
            act.b_stream,
            act.b_static,
            act.r_total(),
            act.b_total()
        );
    }

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for dim in [11usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("plan_analysis", dim), &dim, |b, &dim| {
            b.iter(|| {
                SmacheBuilder::new(GridSpec::d2(dim, dim).expect("valid"))
                    .plan()
                    .expect("plan")
                    .capacity
            })
        });
    }
    // Cost evaluation alone is cheap; bench it on a prebuilt plan.
    let plan = SmacheBuilder::new(GridSpec::d2(1024, 1024).expect("valid"))
        .plan()
        .expect("plan");
    group.bench_function("cost_models_1024x1024", |b| {
        b.iter(|| {
            let e = CostEstimate.memory(&plan);
            let a = SynthesisModel.memory(&plan);
            e.r_total() + a.r_total()
        })
    });
    group.finish();
}

criterion_group!(benches, table1_rows);
criterion_main!(benches);
