//! A minimal JSON value tree and serialiser for the sweep artefacts
//! (`BENCH_*.json`).
//!
//! The workspace intentionally has no serde dependency; the sweep summaries
//! are small, write-only documents, so a hand-rolled emitter is all that is
//! needed. Numbers are emitted as shortest-round-trip floats (Rust's
//! default `Display` for `f64`) or plain integers.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so cycle counts stay exact).
    Int(i64),
    /// A float; non-finite values serialise as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialises with two-space indentation and a trailing newline,
    /// suitable for committing as an artefact.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_rendering() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Int(-3).pretty(), "-3\n");
        assert_eq!(Json::Num(1.5).pretty(), "1.5\n");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::str("a\"b").pretty(), "\"a\\\"b\"\n");
    }

    #[test]
    fn nested_structure_round_trips_visually() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig2")),
            ("seeds", Json::Arr(vec![Json::Int(0), Json::Int(1)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        let text = doc.pretty();
        assert!(text.starts_with("{\n  \"name\": \"fig2\""));
        assert!(text.contains("\"seeds\": [\n    0,\n    1\n  ]"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"nested\": {\n    \"ok\": true\n  }"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::str("line\nbreak\u{1}").pretty();
        assert!(s.contains("\\n"));
        assert!(s.contains("\\u0001"));
    }
}
