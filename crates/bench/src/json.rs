//! JSON for the sweep artefacts (`BENCH_*.json`).
//!
//! The value tree, serialisers and parser live in [`smache_sim::json`] so
//! the bench harnesses, the versioned run reports and the `smache serve`
//! wire protocol all share one implementation; this module re-exports it
//! under the historical `smache_bench::json` path.

pub use smache_sim::json::{Json, JsonError};
