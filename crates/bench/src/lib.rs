//! # smache-bench — experiment harnesses for every table and figure
//!
//! Regenerates the paper's evaluation artefacts on the simulated substrate:
//!
//! * `fig2` binary — the Fig. 2 comparison (baseline vs Smache on the
//!   11×11 / 4-point / circular-boundary workload, 100 work-instances):
//!   cycle count, Fmax, DRAM traffic, simulated execution time, MOPS,
//!   absolute and normalised, with the paper's numbers alongside.
//! * `table1` binary — Table I: estimated vs actual on-chip memory for
//!   {11×11, 1024×1024} × {Case-R, Case-H}.
//! * `ablations` binary — design-space studies motivated by §III: hybrid
//!   stretch-threshold sweep, grid-size scaling of the baseline/Smache
//!   gap, planning-strategy comparison, baseline pipelining depth, and
//!   DRAM row-miss-penalty sensitivity.
//! * Criterion benches (`cargo bench`) — micro and macro benchmarks of the
//!   same components, for regression tracking.
//!
//! The `fig2` and `table1` binaries additionally take `--sweep`/`--jobs`
//! flags to run multi-seed sweeps sharded across worker threads, writing
//! machine-readable `BENCH_fig2.json` / `BENCH_table1.json` summaries (see
//! `docs/PERFORMANCE.md` for how to read them).
//!
//! The library part holds the shared workload generators, the parallel
//! sweep driver, the batch flag group shared by the sweep binaries
//! (`--jobs`/`--replay`/`--store`/`--store-mb`/`--lane-block`), JSON
//! artefact emission, and plain-text table rendering.

#![warn(missing_docs)]

pub mod flags;
pub mod json;
pub mod report;
pub mod sweep;
pub mod workloads;

pub use flags::BatchFlags;
pub use json::Json;
pub use report::Table;
pub use sweep::parallel_map;
pub use workloads::{paper_problem, PaperWorkload};
