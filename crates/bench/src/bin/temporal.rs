//! Temporal-blocking sweep: DRAM traffic vs pipeline depth, cycles vs
//! channel count.
//!
//! Runs the paper's 11×11 workload for a fixed number of grid updates
//! through [`TemporalPipeline`](smache::TemporalPipeline)s of increasing
//! depth (T chained Smache stages → the same updates in `updates / T`
//! DRAM passes), then through a fixed-depth pipeline over an increasing
//! number of DRAM channels with a throttled per-channel command rate.
//! Every run is verified bit-exact against the golden reference, and the
//! summary lands in `BENCH_temporal.json` (path overridable with
//! `--json PATH`):
//!
//! ```text
//! cargo run -p smache-bench --bin temporal --release -- --instances 8
//! ```
//!
//! The artefact's two claims, asserted before the file is written:
//!
//! * **traffic falls with T** — deeper pipelines keep intermediate
//!   timesteps on chip, so DRAM traffic drops ~T× (warm-up refetches are
//!   the remainder);
//! * **cycles fall with channels** — with the per-channel command rate
//!   throttled (`cmd_gap`), interleaving reads round-robin across C
//!   channels restores the issue rate.

use smache::arch::kernel::AverageKernel;
use smache::functional::golden::golden_run;
use smache::system::smache_system::SystemConfig;
use smache::HybridMode;
use smache::PipelineConfig;
use smache_bench::flags::arg_value;
use smache_bench::json::Json;
use smache_bench::report::Table;
use smache_bench::workloads::paper_problem;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let updates: u64 = arg_value(&args, "--instances")
        .map(|v| v.parse().expect("--instances wants a number"))
        .unwrap_or(8);
    let path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_temporal.json".into());

    let workload = paper_problem(11, 11, updates);
    let input = workload.ramp_input();
    let n = workload.grid.len() as u64;
    let golden = golden_run(
        &workload.grid,
        &workload.bounds,
        &workload.shape,
        &AverageKernel,
        &input,
        updates,
    )
    .expect("golden");

    // --- Depth sweep: traffic falls with T --------------------------------
    println!("== Temporal sweep: 11x11, {updates} grid update(s) ==\n");
    let depths: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&d| updates.is_multiple_of(d as u64))
        .collect();
    let mut t = Table::new(vec![
        "Depth",
        "Passes",
        "Cycles",
        "Traffic (KB)",
        "Traffic ratio",
        "BRAM bits",
    ]);
    let mut depth_rows = Vec::new();
    let mut traffic = Vec::new();
    for &depth in &depths {
        let passes = updates / depth as u64;
        let mut pipe = workload.pipeline(
            HybridMode::default(),
            PipelineConfig {
                depth,
                ..Default::default()
            },
        );
        let report = pipe.run(&input, passes).expect("pipeline run");
        assert_eq!(report.output, golden, "depth {depth}: output mismatch");
        let kb = report.metrics.traffic_kb();
        t.row(vec![
            depth.to_string(),
            passes.to_string(),
            report.metrics.cycles.to_string(),
            format!("{kb:.1}"),
            format!("{:.3}", kb / traffic.first().copied().unwrap_or(kb)),
            report.metrics.resources.bram_bits.to_string(),
        ]);
        depth_rows.push(Json::obj(vec![
            ("depth", Json::Int(depth as i64)),
            ("passes", Json::Int(passes as i64)),
            ("cycles", Json::Int(report.metrics.cycles as i64)),
            ("traffic_kb", Json::Num(kb)),
            ("transfers", Json::Int(report.stats.transfers as i64)),
            (
                "bram_bits",
                Json::Int(report.metrics.resources.bram_bits as i64),
            ),
            ("output_matches_golden", Json::Bool(true)),
        ]));
        traffic.push(kb);
    }
    println!("{t}");
    for pair in traffic.windows(2) {
        assert!(
            pair[1] < pair[0],
            "DRAM traffic must fall as the pipeline deepens: {traffic:?}"
        );
    }
    println!("DRAM traffic falls monotonically with depth\n");

    // --- Channel sweep: cycles fall with C under a command-rate limit -----
    let depth = *depths.last().expect("at least depth 1");
    let cmd_gap = 4u64;
    let passes = updates / depth as u64;
    println!("== Channel sweep: depth {depth}, per-channel command gap {cmd_gap} cycle(s) ==");
    let mut t = Table::new(vec!["Channels", "Cycles", "Cycles/cell", "Speed-up"]);
    let mut channel_rows = Vec::new();
    let mut cycles = Vec::new();
    for channels in [1usize, 2, 4] {
        let mut pipe = workload.pipeline(
            HybridMode::default(),
            PipelineConfig {
                depth,
                channels,
                cmd_gap,
                system: SystemConfig::default(),
                ..Default::default()
            },
        );
        let report = pipe.run(&input, passes).expect("pipeline run");
        assert_eq!(
            report.output, golden,
            "{channels} channels: output mismatch"
        );
        let per_cell = report.metrics.cycles as f64 / (n * updates) as f64;
        t.row(vec![
            channels.to_string(),
            report.metrics.cycles.to_string(),
            format!("{per_cell:.3}"),
            format!(
                "{:.2}x",
                cycles.first().copied().unwrap_or(report.metrics.cycles) as f64
                    / report.metrics.cycles as f64
            ),
        ]);
        channel_rows.push(Json::obj(vec![
            ("channels", Json::Int(channels as i64)),
            ("cycles", Json::Int(report.metrics.cycles as i64)),
            ("cycles_per_cell", Json::Num(per_cell)),
            ("output_matches_golden", Json::Bool(true)),
        ]));
        cycles.push(report.metrics.cycles);
    }
    println!("{t}");
    for pair in cycles.windows(2) {
        assert!(
            pair[1] < pair[0],
            "cycles must fall as channels multiply under a command-rate limit: {cycles:?}"
        );
    }
    println!("cycles/cell improves monotonically with channel count");
    println!("every run verified bit-exact against the golden reference\n");

    let doc = Json::obj(vec![
        ("artefact", Json::str("temporal_sweep")),
        ("grid", Json::str("11x11")),
        ("updates", Json::Int(updates as i64)),
        ("depth_sweep", Json::Arr(depth_rows)),
        ("channel_cmd_gap", Json::Int(cmd_gap as i64)),
        ("channel_sweep_depth", Json::Int(depth as i64)),
        ("channel_sweep", Json::Arr(channel_rows)),
    ]);
    std::fs::write(&path, doc.pretty()).expect("write json");
    println!("wrote {path}");
}
