//! MP-STREAM-style memory benchmark of the DRAM substrate.
//!
//! The paper justifies its premise — "stalling the stream from DRAM, or
//! reverting to random accesses, affects the sustained memory bandwidth
//! considerably" — by citing the authors' MP-STREAM benchmark (Nabi &
//! Vanderbauwhede, IPDPSW 2018). This binary reproduces that style of
//! measurement on our DRAM model: sustained read bandwidth under access
//! patterns from pure streaming to pathological row thrash, so the
//! substrate's cost asymmetry is itself documented and testable.
//!
//! ```text
//! cargo run -p smache-bench --bin mpstream --release
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smache_bench::report::{bar, Table};
use smache_mem::{Dram, DramConfig};

const READS: usize = 64 * 1024;

/// A named access pattern: maps the issue index to an address.
type Pattern = Box<dyn FnMut(usize) -> usize>;

/// Issues `READS` reads at addresses from `next`, returning
/// (words/cycle, row-hit fraction incl. sequential).
fn measure(config: DramConfig, mut next: impl FnMut(usize) -> usize) -> (f64, f64) {
    let words = config.row_words * config.num_banks * 64;
    let mut dram = Dram::new(words, config).expect("dram");
    let mut issued = 0usize;
    while issued < READS {
        let addr = next(issued) % words;
        dram.hold_read(addr).expect("in range");
        while dram.tick().read_accepted.is_none() {}
        issued += 1;
    }
    let stats = dram.stats();
    let cycles = dram.cycle() as f64;
    let hits = (stats.sequential_reads + stats.row_hits) as f64 / stats.reads as f64;
    (READS as f64 / cycles, hits)
}

fn main() {
    let config = DramConfig::default();
    println!(
        "== MP-STREAM-style sweep: {} reads, rows of {} words, {} banks, miss penalty {} ==\n",
        READS, config.row_words, config.num_banks, config.row_miss_penalty
    );

    let conflict_stride = config.row_words * config.num_banks;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut patterns: Vec<(String, Pattern)> = vec![
        ("sequential".into(), Box::new(|i| i)),
        ("strided x2".into(), Box::new(|i| i * 2)),
        ("strided x8".into(), Box::new(|i| i * 8)),
        ("strided x64".into(), Box::new(|i| i * 64)),
        (
            format!("bank-conflict stride x{conflict_stride}"),
            Box::new(move |i| i * conflict_stride),
        ),
        ("random".into(), Box::new(move |_| rng.gen::<usize>())),
    ];
    // The stencil gather pattern of the unbuffered baseline: N, W, E, S
    // around a walking centre (grid row width 2048 → N/S cross rows).
    let grid_w = 2048usize;
    patterns.push((
        "4-pt stencil gather (w=2048)".into(),
        Box::new(move |i| {
            let e = i / 4;
            match i % 4 {
                0 => e.wrapping_sub(grid_w),
                1 => e.wrapping_sub(1),
                2 => e + 1,
                _ => e + grid_w,
            }
        }),
    ));

    let mut t = Table::new(vec![
        "pattern",
        "words/cycle",
        "row-hit rate",
        "bandwidth (bar)",
    ]);
    let mut results = Vec::new();
    for (name, next) in patterns {
        let (bw, hits) = measure(config, next);
        results.push((name, bw, hits));
    }
    let max_bw = results.iter().map(|r| r.1).fold(0.0_f64, f64::max);
    for (name, bw, hits) in &results {
        t.row(vec![
            name.clone(),
            format!("{bw:.3}"),
            format!("{:.1}%", hits * 100.0),
            bar(*bw, max_bw, 30),
        ]);
    }
    println!("{t}");
    println!("sequential streaming sustains ~1 word/cycle; the bank-conflict");
    println!("stride pays the full precharge+activate penalty on every access —");
    println!("the two regimes Smache (streaming) and the baseline (gather) live in.");
}
