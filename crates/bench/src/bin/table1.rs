//! Regenerates **Table I** of the paper: estimated vs actual on-chip
//! memory utilisation for {11×11, 1024×1024} grids × {Case-R, Case-H}
//! stream buffers.
//!
//! ```text
//! cargo run -p smache-bench --bin table1 --release
//! ```
//!
//! The four design points are planned independently, so `--jobs J` shards
//! them across worker threads; `--json [PATH]` additionally writes a
//! machine-readable summary (default `BENCH_table1.json`).

use smache::cost::{CostEstimate, MemoryBreakdown, SynthesisModel};
use smache::{HybridMode, SmacheBuilder};
use smache_bench::json::Json;
use smache_bench::parallel_map;
use smache_bench::report::Table;
use smache_stencil::GridSpec;

/// The paper's Table I values: (problem, Rsc, Bsc, Rsm, Bsm, Rtot, Btot)
/// per (estimate, actual) pair.
const PAPER: &[(&str, [u64; 6], [u64; 6])] = &[
    (
        "11x11r",
        [0, 1408, 800, 0, 800, 1408],
        [0, 1536, 928, 0, 998, 1536],
    ),
    (
        "11x11h",
        [0, 1408, 352, 448, 352, 1856],
        [0, 1536, 355, 512, 425, 2048],
    ),
    (
        "1024x1024r",
        [0, 131_072, 65_632, 0, 65_632, 131_072],
        [0, 131_200, 65_670, 0, 66_857, 131_200],
    ),
    (
        "1024x1024h",
        [0, 131_072, 352, 65_280, 352, 196_352],
        [0, 131_200, 362, 65_536, 1549, 196_736],
    ),
];

/// `--flag value` lookup over raw args.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The four Table I design points, planned and costed. Each point is
/// independent, so they shard across `jobs` worker threads.
fn design_points(jobs: usize) -> Vec<(&'static str, MemoryBreakdown, MemoryBreakdown)> {
    let points = vec![
        (11usize, HybridMode::CaseR, "11x11r"),
        (11, HybridMode::default(), "11x11h"),
        (1024, HybridMode::CaseR, "1024x1024r"),
        (1024, HybridMode::default(), "1024x1024h"),
    ];
    parallel_map(points, jobs, |&(dim, hybrid, label)| {
        let plan = SmacheBuilder::new(GridSpec::d2(dim, dim).expect("valid"))
            .hybrid(hybrid)
            .plan()
            .expect("paper plan");
        (
            label,
            CostEstimate.memory(&plan),
            SynthesisModel.memory(&plan),
        )
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = arg_value(&args, "--jobs")
        .map(|v| v.parse().expect("--jobs wants a number"))
        .unwrap_or(1);
    let json_path = args.iter().any(|a| a == "--json").then(|| {
        arg_value(&args, "--json")
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| "BENCH_table1.json".into())
    });

    let points = design_points(jobs);

    let mut t = Table::new(vec![
        "Problem", "Rsc", "Bsc", "Rsm", "Bsm", "Rtotal", "Btotal",
    ]);
    let mut json_rows = Vec::new();

    for (label, est, act) in &points {
        let paper = PAPER
            .iter()
            .find(|(p, _, _)| p == label)
            .expect("known row");

        for (tag, m, reference) in [("Estimate", est, paper.1), ("Actual", act, paper.2)] {
            t.row(vec![
                format!("{label} {tag} (ours)"),
                m.r_static.to_string(),
                m.b_static.to_string(),
                m.r_stream.to_string(),
                m.b_stream.to_string(),
                m.r_total().to_string(),
                m.b_total().to_string(),
            ]);
            t.row(vec![
                format!("{label} {tag} (paper)"),
                reference[0].to_string(),
                reference[1].to_string(),
                reference[2].to_string(),
                reference[3].to_string(),
                reference[4].to_string(),
                reference[5].to_string(),
            ]);
            json_rows.push(Json::obj(vec![
                ("problem", Json::str(*label)),
                ("kind", Json::str(tag)),
                ("r_static", Json::Int(m.r_static as i64)),
                ("b_static", Json::Int(m.b_static as i64)),
                ("r_stream", Json::Int(m.r_stream as i64)),
                ("b_stream", Json::Int(m.b_stream as i64)),
                ("r_total", Json::Int(m.r_total() as i64)),
                ("b_total", Json::Int(m.b_total() as i64)),
                (
                    "paper",
                    Json::Arr(reference.iter().map(|&v| Json::Int(v as i64)).collect()),
                ),
            ]));
        }
    }

    println!("== Table I: estimated vs actual on-chip memory utilisation ==");
    println!("   (R = register bits, B = BRAM bits; sc = static buffers,");
    println!("    sm = streaming buffer; each 'ours' row is followed by the");
    println!("    paper's reported row)");
    println!();
    println!("{t}");

    // Tracking quality summary: the paper's claim is that the estimate
    // "very closely tracks the actual resource utilization".
    println!("== Estimate-vs-actual tracking (buffer columns, ours) ==");
    let mut q = Table::new(vec!["Problem", "worst column error"]);
    for (label, est, act) in &points {
        let err = [
            (est.r_static, act.r_static),
            (est.b_static, act.b_static),
            (est.r_stream, act.r_stream),
            (est.b_stream, act.b_stream),
        ]
        .into_iter()
        .map(|(e, a)| {
            if a == 0 {
                if e == 0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                (e as f64 - a as f64).abs() / a as f64
            }
        })
        .fold(0.0_f64, f64::max);
        q.row(vec![label.to_string(), format!("{:.1}%", err * 100.0)]);
    }
    println!("{q}");

    if let Some(path) = json_path {
        let doc = Json::obj(vec![
            ("artefact", Json::str("table1")),
            ("jobs", Json::Int(jobs as i64)),
            ("rows", Json::Arr(json_rows)),
        ]);
        std::fs::write(&path, doc.pretty()).expect("write table1 summary");
        println!("summary written to {path}");
    }
}
