//! Cold vs warm-start serving with a persistent schedule store.
//!
//! Two closed-loop passes drive the same spec mix (several distinct grid
//! sizes, one request each) against `smache serve` with `--store`:
//!
//! * **cold** — a fresh store directory: every spec full-simulates,
//!   captures its control schedule and persists it;
//! * **warm** — a *restarted* server on the same directory with fresh
//!   seeds: every spec's schedule comes off disk and the request is
//!   served by bit-exact replay, no capture anywhere.
//!
//! Result caches cannot interfere: each server is a fresh process (empty
//! in-memory caches) and every request uses a seed never sent before.
//! The headline check — warm-start throughput must be at least 5x cold —
//! lands in `BENCH_store.json` (`--json PATH` overrides).
//!
//! ```text
//! cargo run -p smache-bench --bin store --release
//! ```

use std::time::Instant;

use smache_bench::json::Json;
use smache_bench::report::Table;
use smache_serve::{start, Client, Listen, ServeConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&format!("{flag}=")).map(str::to_string))
        })
}

/// The spec mix: distinct grids, so every request needs its own schedule
/// and the store (not a single hot entry) is what warms the second pass.
const GRIDS: &[usize] = &[32, 36, 40, 44, 48, 52];
const INSTANCES: u64 = 2;

fn request_line(id: String, grid: usize, seed: u64) -> Json {
    Json::obj(vec![
        ("id", Json::str(id)),
        ("cmd", Json::str("simulate")),
        (
            "spec",
            Json::obj(vec![("grid", Json::str(format!("{grid}x{grid}")))]),
        ),
        ("seed", Json::Int(seed as i64)),
        ("instances", Json::Int(INSTANCES as i64)),
    ])
}

struct Pass {
    wall_s: f64,
    replayed: u64,
    store_hits: u64,
    store_writes: u64,
}

/// One closed-loop pass: a fresh server over `store_dir`, one request per
/// grid (seeds offset by `seed_base` so nothing repeats across passes).
fn run_pass(tag: &str, store_dir: &std::path::Path, workers: usize, seed_base: u64) -> Pass {
    let sock = std::env::temp_dir().join(format!(
        "smache-store-bench-{}-{tag}.sock",
        std::process::id()
    ));
    let handle = start(ServeConfig {
        listen: Listen::Unix(sock),
        workers,
        queue_cap: GRIDS.len() * 2,
        cache_bytes: 16 << 20,
        schedule_cache_bytes: 16 << 20,
        store_dir: Some(store_dir.to_path_buf()),
        store_bytes: 256 << 20,
        default_deadline_ms: None,
        ..ServeConfig::default()
    })
    .expect("server starts");

    let mut conn = Client::connect(handle.addr()).expect("connect");
    let started = Instant::now();
    let mut replayed = 0u64;
    for (i, &grid) in GRIDS.iter().enumerate() {
        let resp = conn
            .call(&request_line(
                format!("{tag}{i}"),
                grid,
                seed_base + i as u64,
            ))
            .expect("call");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "{tag} request {i} failed: {}",
            resp.compact()
        );
        assert_eq!(
            resp.get("cached").and_then(Json::as_bool),
            Some(false),
            "{tag} request {i} must not be a result-cache hit"
        );
        if resp
            .get("report")
            .and_then(|r| r.get("engine"))
            .and_then(Json::as_str)
            == Some("replay")
        {
            replayed += 1;
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    let metrics = handle.metrics();
    let pass = Pass {
        wall_s,
        replayed,
        store_hits: metrics.counter("serve.store.hits"),
        store_writes: metrics.counter("serve.store.writes"),
    };
    handle.shutdown();
    pass
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers: usize = arg_value(&args, "--workers")
        .map(|v| v.parse().expect("--workers wants a number"))
        .unwrap_or(2);
    let path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_store.json".into());

    let store_dir = std::env::temp_dir().join(format!("smache-store-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();

    println!(
        "== store warm-start: {} specs ({}..{} squared) x{INSTANCES}, {workers} workers ==\n",
        GRIDS.len(),
        GRIDS[0],
        GRIDS[GRIDS.len() - 1],
    );

    let cold = run_pass("cold", &store_dir, workers, 100);
    let warm = run_pass("warm", &store_dir, workers, 200);
    std::fs::remove_dir_all(&store_dir).ok();

    let specs = GRIDS.len() as u64;
    assert_eq!(
        cold.store_writes, specs,
        "cold pass must persist every captured schedule"
    );
    assert_eq!(cold.store_hits, 0, "cold pass starts from an empty store");
    assert_eq!(
        warm.store_hits, specs,
        "warm pass must load every schedule from disk"
    );
    assert_eq!(warm.store_writes, 0, "warm pass must never recapture");
    assert_eq!(
        warm.replayed, specs,
        "every warm request must be served by replay"
    );

    let cold_rps = specs as f64 / cold.wall_s;
    let warm_rps = specs as f64 / warm.wall_s;
    let speedup = warm_rps / cold_rps;

    let mut table = Table::new(vec![
        "Pass",
        "req/s",
        "wall ms",
        "replayed",
        "store hits",
        "store writes",
    ]);
    for (tag, pass, rps) in [("cold", &cold, cold_rps), ("warm", &warm, warm_rps)] {
        table.row(vec![
            tag.to_string(),
            format!("{rps:.1}"),
            format!("{:.1}", pass.wall_s * 1e3),
            pass.replayed.to_string(),
            pass.store_hits.to_string(),
            pass.store_writes.to_string(),
        ]);
    }
    println!("{table}");
    println!("warm-start speedup (closed loop, distinct-spec traffic): {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "warm-start must yield >= 5x throughput over cold capture, got {speedup:.1}x"
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("store_warm_start")),
        (
            "grids",
            Json::Arr(
                GRIDS
                    .iter()
                    .map(|&g| Json::str(format!("{g}x{g}")))
                    .collect(),
            ),
        ),
        ("instances", Json::Int(INSTANCES as i64)),
        ("workers", Json::Int(workers as i64)),
        (
            "cold",
            Json::obj(vec![
                ("wall_s", Json::Num(cold.wall_s)),
                ("throughput_rps", Json::Num(cold_rps)),
                ("store_writes", Json::Int(cold.store_writes as i64)),
                ("store_hits", Json::Int(cold.store_hits as i64)),
            ]),
        ),
        (
            "warm",
            Json::obj(vec![
                ("wall_s", Json::Num(warm.wall_s)),
                ("throughput_rps", Json::Num(warm_rps)),
                ("store_writes", Json::Int(warm.store_writes as i64)),
                ("store_hits", Json::Int(warm.store_hits as i64)),
                ("replayed", Json::Int(warm.replayed as i64)),
            ]),
        ),
        ("warm_start_speedup", Json::Num(speedup)),
    ]);
    std::fs::write(&path, doc.pretty()).expect("write json");
    println!("wrote {path}");
}
