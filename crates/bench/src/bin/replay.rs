//! Benchmarks **control-schedule replay** against full simulation and
//! writes the machine-readable summary to `BENCH_replay.json` (path
//! overridable with `--json PATH`):
//!
//! ```text
//! cargo run -p smache-bench --bin replay --release -- --jobs 4
//! ```
//!
//! Takes the shared batch flag group (`--jobs`, `--replay`, `--store`,
//! `--store-mb`, `--lane-block`) — see [`smache_bench::flags`].
//!
//! Four measurements, all on the paper workload (11×11 four-point
//! stencil, 100 work-instances):
//!
//! 1. **Capture overhead**: one full simulation with the per-cycle
//!    control recorder attached vs a plain run.
//! 2. **Batch speedup** at 1/8/64 lanes:
//!    [`SmacheSystem::run_batch`] with replay off (every lane simulates)
//!    vs replay on (capture once, replay the rest lane-batched).
//! 3. **Chaos replay**: a latency-only fault plan (fixed chaos seed)
//!    swept across 8 data seeds — the chaotic control plane is captured
//!    once and replayed for the other lanes.
//! 4. **Bit-exactness**: every replayed lane's output fingerprint must
//!    equal the full simulation's — asserted, not sampled.

use std::time::Instant;

use smache::system::batch::{BatchJob, BatchOptions};
use smache::system::smache_system::SystemConfig;
use smache::system::{BatchReport, ReplayMode, RunEngine, SmacheSystem};
use smache::HybridMode;
use smache_bench::flags::{arg_value, BatchFlags};
use smache_bench::json::Json;
use smache_bench::workloads::paper_problem;
use smache_mem::{ChaosProfile, FaultPlan};
use smache_sim::hash::fingerprint128;

fn fp(output: &[u64]) -> (u64, u64) {
    let mut bytes = Vec::with_capacity(output.len() * 8);
    for w in output {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    fingerprint128(&bytes)
}

/// Asserts the replayed batch is bit-identical to the full one, lane by
/// lane, and returns how many lanes the replay engine served.
fn assert_bit_exact(full: &BatchReport, fast: &BatchReport) -> usize {
    let mut replayed_lanes = 0usize;
    for (a, b) in full.lanes.iter().zip(&fast.lanes) {
        let (a, b) = (a.as_ref().expect("full"), b.as_ref().expect("fast"));
        assert_eq!(fp(&a.output), fp(&b.output), "lane fingerprints differ");
        assert_eq!(a.stats, b.stats, "lane cycle accounting differs");
        if b.engine == RunEngine::Replay {
            replayed_lanes += 1;
        }
    }
    assert_eq!(full.aggregate, fast.aggregate, "aggregates differ");
    replayed_lanes
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = BatchFlags::parse(&args, 4);
    let json_path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_replay.json".into());

    let workload = paper_problem(11, 11, 100);
    let input = workload.ramp_input();

    // --- 1. Capture overhead ---------------------------------------------
    let t0 = Instant::now();
    let mut plain_sys = workload.smache(HybridMode::default());
    let plain = plain_sys.run(&input, workload.instances).expect("run");
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut capture_sys = workload.smache(HybridMode::default());
    let (captured, schedule) = capture_sys
        .run_captured(&input, workload.instances)
        .expect("capture");
    let capture_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(captured.output, plain.output, "capture changed the run");

    let t0 = Instant::now();
    let replayed = schedule
        .replay(&smache::arch::kernel::AverageKernel, &input)
        .expect("replay");
    let replay_one_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(replayed.output, plain.output, "replay diverged");

    println!(
        "== capture overhead (11x11 x {} instances) ==",
        workload.instances
    );
    println!("  full sim            {full_ms:8.2} ms");
    println!(
        "  capturing sim       {capture_ms:8.2} ms ({:+.0}% overhead)",
        (capture_ms / full_ms - 1.0) * 100.0
    );
    println!(
        "  single replay       {replay_one_ms:8.2} ms ({:.1}x vs full sim)",
        full_ms / replay_one_ms
    );
    println!(
        "  schedule size       {:8} bytes ({} recorded cycles)\n",
        schedule.approx_bytes(),
        schedule.trace().len()
    );

    // --- 2./4. Batch speedup + bit-exactness -----------------------------
    let make_jobs =
        |lanes: u64| -> Vec<BatchJob> { workload.batch_jobs(0..lanes, HybridMode::default()) };

    let mut batch_rows = Vec::new();
    println!(
        "== batch sweep: full sim vs lane-batched schedule replay ({} job(s), lane block {}) ==",
        flags.jobs, flags.lane_block
    );
    println!("  lanes      full(ms)    replay(ms)   speedup   replayed");
    for lanes in [1u64, 8, 64] {
        let t0 = Instant::now();
        let full = SmacheSystem::run_batch(
            make_jobs(lanes),
            BatchOptions::new()
                .threads(flags.jobs)
                .replay(ReplayMode::Off),
        );
        let full_wall = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let fast = SmacheSystem::run_batch(make_jobs(lanes), flags.options());
        let fast_wall = t0.elapsed().as_secs_f64() * 1e3;

        let replayed_lanes = assert_bit_exact(&full, &fast);
        let speedup = full_wall / fast_wall;
        println!(
            "  {lanes:>5}    {full_wall:9.2}    {fast_wall:9.2}   {speedup:6.2}x   {replayed_lanes}/{lanes}"
        );
        batch_rows.push(Json::obj(vec![
            ("lanes", Json::Int(lanes as i64)),
            ("full_ms", Json::Num(full_wall)),
            ("replay_ms", Json::Num(fast_wall)),
            ("speedup", Json::Num(speedup)),
            ("replayed_lanes", Json::Int(replayed_lanes as i64)),
            ("fingerprints_match", Json::Bool(true)),
        ]));
    }
    println!("  (fingerprints and cycle stats asserted bit-identical per lane)\n");

    // --- 3. Chaos replay: latency-only plan across data seeds ------------
    const CHAOS_SEED: u64 = 7;
    const CHAOS_LANES: u64 = 8;
    let chaos_config = SystemConfig {
        fault_plan: FaultPlan::new(CHAOS_SEED, ChaosProfile::storms()),
        ..SystemConfig::default()
    };
    let chaos_jobs = || -> Vec<BatchJob> {
        workload
            .batch_jobs(0..CHAOS_LANES, HybridMode::default())
            .into_iter()
            .map(|j| j.with_config(chaos_config))
            .collect()
    };
    let t0 = Instant::now();
    let chaos_full = SmacheSystem::run_batch(
        chaos_jobs(),
        BatchOptions::new()
            .threads(flags.jobs)
            .replay(ReplayMode::Off),
    );
    let chaos_full_wall = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    // Forced `on`: a refusal would error a lane, so success proves the
    // chaotic control plane genuinely replayed.
    let chaos_fast = SmacheSystem::run_batch(
        chaos_jobs(),
        BatchOptions::new()
            .threads(flags.jobs)
            .replay(ReplayMode::On)
            .lane_block(flags.lane_block),
    );
    let chaos_fast_wall = t0.elapsed().as_secs_f64() * 1e3;
    let chaos_replayed = assert_bit_exact(&chaos_full, &chaos_fast);
    assert!(
        chaos_replayed >= 1,
        "the chaotic sweep must serve lanes by replay"
    );
    let chaos_speedup = chaos_full_wall / chaos_fast_wall;
    println!(
        "== chaos replay: storms profile, chaos seed {CHAOS_SEED}, {CHAOS_LANES} data seeds =="
    );
    println!(
        "  full {chaos_full_wall:9.2} ms   replay {chaos_fast_wall:9.2} ms   \
         {chaos_speedup:5.2}x   {chaos_replayed}/{CHAOS_LANES} replayed (bit-exact)\n"
    );

    let doc = Json::obj(vec![
        ("artefact", Json::str("replay")),
        ("grid", Json::str("11x11")),
        ("instances", Json::Int(workload.instances as i64)),
        ("jobs", Json::Int(flags.jobs as i64)),
        ("lane_block", Json::Int(flags.lane_block as i64)),
        (
            "capture",
            Json::obj(vec![
                ("full_ms", Json::Num(full_ms)),
                ("capture_ms", Json::Num(capture_ms)),
                ("overhead_ratio", Json::Num(capture_ms / full_ms)),
                ("replay_one_ms", Json::Num(replay_one_ms)),
                ("schedule_bytes", Json::Int(schedule.approx_bytes() as i64)),
                ("trace_cycles", Json::Int(schedule.trace().len() as i64)),
            ]),
        ),
        ("batches", Json::Arr(batch_rows)),
        (
            "chaos",
            Json::obj(vec![
                ("profile", Json::str("storms")),
                ("chaos_seed", Json::Int(CHAOS_SEED as i64)),
                ("lanes", Json::Int(CHAOS_LANES as i64)),
                ("full_ms", Json::Num(chaos_full_wall)),
                ("replay_ms", Json::Num(chaos_fast_wall)),
                ("speedup", Json::Num(chaos_speedup)),
                ("replayed_lanes", Json::Int(chaos_replayed as i64)),
                ("fingerprints_match", Json::Bool(true)),
            ]),
        ),
    ]);
    std::fs::write(&json_path, doc.pretty()).expect("write replay summary");
    println!("replay summary written to {json_path}");
}
