//! Benchmarks **control-schedule replay** against full simulation and
//! writes the machine-readable summary to `BENCH_replay.json` (path
//! overridable with `--json PATH`):
//!
//! ```text
//! cargo run -p smache-bench --bin replay --release -- --jobs 4
//! ```
//!
//! Three measurements, all on the paper workload (11×11 four-point
//! stencil, 100 work-instances):
//!
//! 1. **Capture overhead**: one full simulation with the per-cycle
//!    control recorder attached vs a plain run.
//! 2. **Batch speedup** at 1/8/64 lanes: [`SmacheSystem::run_batch`]
//!    (every lane simulates) vs [`SmacheSystem::run_batch_replay`]
//!    (capture once, replay the rest).
//! 3. **Bit-exactness**: every replayed lane's output fingerprint must
//!    equal the full simulation's — asserted, not sampled.

use std::time::Instant;

use smache::system::batch::BatchJob;
use smache::system::{ReplayMode, RunEngine, SmacheSystem};
use smache::HybridMode;
use smache_bench::json::Json;
use smache_bench::workloads::paper_problem;
use smache_sim::hash::fingerprint128;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&format!("{flag}=")).map(str::to_string))
        })
}

fn fp(output: &[u64]) -> (u64, u64) {
    let mut bytes = Vec::with_capacity(output.len() * 8);
    for w in output {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    fingerprint128(&bytes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = arg_value(&args, "--jobs")
        .map(|v| v.parse().expect("--jobs wants a number"))
        .unwrap_or(4);
    let json_path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_replay.json".into());

    let workload = paper_problem(11, 11, 100);
    let input = workload.ramp_input();

    // --- 1. Capture overhead ---------------------------------------------
    let t0 = Instant::now();
    let mut plain_sys = workload.smache(HybridMode::default());
    let plain = plain_sys.run(&input, workload.instances).expect("run");
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut capture_sys = workload.smache(HybridMode::default());
    let (captured, schedule) = capture_sys
        .run_captured(&input, workload.instances)
        .expect("capture");
    let capture_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(captured.output, plain.output, "capture changed the run");

    let t0 = Instant::now();
    let replayed = schedule
        .replay(&smache::arch::kernel::AverageKernel, &input)
        .expect("replay");
    let replay_one_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(replayed.output, plain.output, "replay diverged");

    println!(
        "== capture overhead (11x11 x {} instances) ==",
        workload.instances
    );
    println!("  full sim            {full_ms:8.2} ms");
    println!(
        "  capturing sim       {capture_ms:8.2} ms ({:+.0}% overhead)",
        (capture_ms / full_ms - 1.0) * 100.0
    );
    println!(
        "  single replay       {replay_one_ms:8.2} ms ({:.1}x vs full sim)",
        full_ms / replay_one_ms
    );
    println!(
        "  schedule size       {:8} bytes ({} recorded cycles)\n",
        schedule.approx_bytes(),
        schedule.trace().len()
    );

    // --- 2./3. Batch speedup + bit-exactness -----------------------------
    let make_jobs = |lanes: u64| -> Vec<BatchJob> {
        (0..lanes)
            .map(|s| workload.batch_job(s, HybridMode::default()))
            .collect()
    };

    let mut batch_rows = Vec::new();
    println!("== batch sweep: full sim vs schedule replay ({jobs} job(s)) ==");
    println!("  lanes      full(ms)    replay(ms)   speedup   replayed");
    for lanes in [1u64, 8, 64] {
        let t0 = Instant::now();
        let full = SmacheSystem::run_batch(make_jobs(lanes), jobs);
        let full_wall = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let fast = SmacheSystem::run_batch_replay(make_jobs(lanes), jobs, ReplayMode::Auto);
        let fast_wall = t0.elapsed().as_secs_f64() * 1e3;

        let mut replayed_lanes = 0usize;
        for (a, b) in full.lanes.iter().zip(&fast.lanes) {
            let (a, b) = (a.as_ref().expect("full"), b.as_ref().expect("fast"));
            assert_eq!(fp(&a.output), fp(&b.output), "lane fingerprints differ");
            assert_eq!(a.stats, b.stats, "lane cycle accounting differs");
            if b.engine == RunEngine::Replay {
                replayed_lanes += 1;
            }
        }
        assert_eq!(full.aggregate, fast.aggregate, "aggregates differ");

        let speedup = full_wall / fast_wall;
        println!(
            "  {lanes:>5}    {full_wall:9.2}    {fast_wall:9.2}   {speedup:6.2}x   {replayed_lanes}/{lanes}"
        );
        batch_rows.push(Json::obj(vec![
            ("lanes", Json::Int(lanes as i64)),
            ("full_ms", Json::Num(full_wall)),
            ("replay_ms", Json::Num(fast_wall)),
            ("speedup", Json::Num(speedup)),
            ("replayed_lanes", Json::Int(replayed_lanes as i64)),
            ("fingerprints_match", Json::Bool(true)),
        ]));
    }
    println!("  (fingerprints and cycle stats asserted bit-identical per lane)\n");

    let doc = Json::obj(vec![
        ("artefact", Json::str("replay")),
        ("grid", Json::str("11x11")),
        ("instances", Json::Int(workload.instances as i64)),
        ("jobs", Json::Int(jobs as i64)),
        (
            "capture",
            Json::obj(vec![
                ("full_ms", Json::Num(full_ms)),
                ("capture_ms", Json::Num(capture_ms)),
                ("overhead_ratio", Json::Num(capture_ms / full_ms)),
                ("replay_one_ms", Json::Num(replay_one_ms)),
                ("schedule_bytes", Json::Int(schedule.approx_bytes() as i64)),
                ("trace_cycles", Json::Int(schedule.trace().len() as i64)),
            ]),
        ),
        ("batches", Json::Arr(batch_rows)),
    ]);
    std::fs::write(&json_path, doc.pretty()).expect("write replay summary");
    println!("replay summary written to {json_path}");
}
