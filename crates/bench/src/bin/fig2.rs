//! Regenerates **Fig. 2** of the paper: baseline vs Smache on the 11×11
//! 4-point-stencil workload with circular top/bottom boundaries, 100
//! work-instances.
//!
//! ```text
//! cargo run -p smache-bench --bin fig2 --release
//! ```

use smache::arch::kernel::AverageKernel;
use smache::functional::golden::golden_run;
use smache::system::metrics::DesignMetrics;
use smache::HybridMode;
use smache_baseline::BaselineConfig;
use smache_bench::report::{bar, Table};
use smache_bench::workloads::paper_problem;

fn main() {
    let workload = paper_problem(11, 11, 100);
    let input = workload.ramp_input();

    // --- Run both designs -------------------------------------------------
    let mut baseline = workload.baseline(BaselineConfig::default());
    let base_report = baseline
        .run(&input, workload.instances)
        .expect("baseline run");

    let mut smache = workload.smache(HybridMode::default());
    let sm_report = smache.run(&input, workload.instances).expect("smache run");

    // --- Validate both against the golden reference ----------------------
    let golden = golden_run(
        &workload.grid,
        &workload.bounds,
        &workload.shape,
        &AverageKernel,
        &input,
        workload.instances,
    )
    .expect("golden");
    assert_eq!(base_report.output, golden, "baseline output mismatch");
    assert_eq!(sm_report.output, golden, "smache output mismatch");
    println!("outputs verified against golden reference (both designs bit-identical)\n");

    // --- Absolute metrics (the table embedded in Fig. 2) ------------------
    println!("== Fig. 2: absolute metrics (this reproduction) ==");
    println!("{}", DesignMetrics::table_header());
    println!("{}", base_report.metrics.table_row());
    println!("{}", sm_report.metrics.table_row());
    println!();

    println!("== Fig. 2: paper-reported values ==");
    let mut paper = Table::new(vec![
        "Design",
        "Cycle-count",
        "Freq(MHz)",
        "DRAM-traffic(KB)",
        "Exec-time(us)",
        "Perf(MOPS)",
    ]);
    paper.row(vec![
        "Baseline", "64001", "372.9", "236.3", "171.6", "282.01",
    ]);
    paper.row(vec!["Smache", "14039", "235.3", "95.5", "59.7", "811.21"]);
    println!("{paper}");

    // --- Normalised chart (the bars of Fig. 2) ---------------------------
    let norm = sm_report.metrics.normalised_against(&base_report.metrics);
    println!("== Fig. 2: Smache normalised against baseline (bars) ==");
    let rows: Vec<(&str, f64, f64)> = vec![
        ("Cycle-count", norm.cycles, 14039.0 / 64001.0),
        ("Freq (MHz)", norm.fmax, 235.3 / 372.9),
        ("DRAM traffic", norm.traffic, 95.5 / 236.3),
        ("Sim exec time", norm.exec_time, 59.7 / 171.6),
        ("Perf (MOPS)", norm.mops, 811.21 / 282.01),
    ];
    let max = rows.iter().map(|r| r.1.max(r.2)).fold(1.0_f64, f64::max);
    let mut t = Table::new(vec!["Metric", "ours", "paper", "ours (bar)"]);
    for (name, ours, paper) in &rows {
        t.row(vec![
            name.to_string(),
            format!("{ours:.3}"),
            format!("{paper:.3}"),
            bar(*ours, max, 30),
        ]);
    }
    println!("{t}");
    println!(
        "overall simulated speed-up: {:.2}x (paper: {:.2}x)\n",
        norm.speedup(),
        171.6 / 59.7
    );

    // --- §IV resource prose ------------------------------------------------
    println!("== §IV resource comparison ==");
    let mut r = Table::new(vec!["Design", "ALMs", "Registers", "BRAM bits"]);
    let br = &base_report.metrics.resources;
    let sr = &sm_report.metrics.resources;
    r.row(vec![
        "Baseline (ours)".to_string(),
        br.alms.to_string(),
        br.registers.to_string(),
        br.bram_bits.to_string(),
    ]);
    r.row::<String>(vec![
        "Baseline (paper)".into(),
        "79".into(),
        "262".into(),
        "0".into(),
    ]);
    // The paper's prose quotes the Case-R build (998 buffer/controller
    // registers + ~90 kernel registers = 1088; 1.5K BRAM bits).
    let case_r = workload.smache(HybridMode::CaseR);
    let rr = case_r.resources();
    r.row(vec![
        "Smache-r (ours)".to_string(),
        rr.alms.to_string(),
        rr.registers.to_string(),
        rr.bram_bits.to_string(),
    ]);
    r.row::<String>(vec![
        "Smache-r (paper)".into(),
        "520".into(),
        "1088".into(),
        "1536".into(),
    ]);
    r.row(vec![
        "Smache-h (ours)".to_string(),
        sr.alms.to_string(),
        sr.registers.to_string(),
        sr.bram_bits.to_string(),
    ]);
    println!("{r}");
}
