//! Regenerates **Fig. 2** of the paper: baseline vs Smache on the 11×11
//! 4-point-stencil workload with circular top/bottom boundaries, 100
//! work-instances.
//!
//! ```text
//! cargo run -p smache-bench --bin fig2 --release
//! ```
//!
//! With `--sweep N` the comparison instead runs over `N` random input
//! seeds and writes a machine-readable summary to `BENCH_fig2.json`
//! (path overridable with `--json PATH`). The sweep takes the shared
//! batch flag group (`--jobs`, `--replay`, `--store`, `--store-mb`,
//! `--lane-block`) — see [`smache_bench::flags`]:
//!
//! ```text
//! cargo run -p smache-bench --bin fig2 --release -- --sweep 8 --jobs 4
//! ```
//!
//! `--store DIR` points the sweep at a persistent schedule store: the
//! capture lane is skipped entirely when the store already holds the
//! spec's schedule, and a fresh capture is written back for next time
//! (see `docs/DEPLOYMENT.md`).

use std::time::Instant;

use smache::arch::kernel::AverageKernel;
use smache::functional::golden::golden_run;
use smache::system::metrics::DesignMetrics;
use smache::system::SmacheSystem;
use smache::HybridMode;
use smache_baseline::BaselineConfig;
use smache_bench::flags::{arg_value, pipeline_args, BatchFlags};
use smache_bench::json::Json;
use smache_bench::parallel_map;
use smache_bench::report::{bar, Table};
use smache_bench::workloads::{paper_problem, PaperWorkload};

/// `--chaos-seed`/`--chaos-profile` as a fault plan (inactive when absent).
fn chaos_plan(args: &[String]) -> smache_mem::FaultPlan {
    let profile = arg_value(args, "--chaos-profile")
        .map(|name| {
            smache_mem::ChaosProfile::from_name(&name)
                .expect("--chaos-profile wants off|jitter|storms|drain|heavy|flip:<k>")
        })
        .unwrap_or_else(smache_mem::ChaosProfile::none);
    let seed: u64 = arg_value(args, "--chaos-seed")
        .map(|v| v.parse().expect("--chaos-seed wants a number"))
        .unwrap_or(0);
    smache_mem::FaultPlan::new(seed, profile)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chaos = chaos_plan(&args);
    if let Some(sweep) = arg_value(&args, "--sweep") {
        let seeds: u64 = sweep.parse().expect("--sweep wants a seed count");
        let path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_fig2.json".into());
        let flags = BatchFlags::parse(&args, 1);
        run_sweep(seeds, flags, &path, chaos);
        return;
    }

    let workload = paper_problem(11, 11, 100);
    let input = workload.ramp_input();

    // --- Run both designs -------------------------------------------------
    let mut baseline = workload.baseline(BaselineConfig::default());
    let base_report = baseline
        .run(&input, workload.instances)
        .expect("baseline run");

    let mut smache = workload.smache_with(
        HybridMode::default(),
        smache::system::smache_system::SystemConfig {
            fault_plan: chaos,
            ..Default::default()
        },
    );
    let trace_fmt = arg_value(&args, "--trace");
    if let Some(fmt) = &trace_fmt {
        assert!(
            ["vcd", "chrome", "ascii"].contains(&fmt.as_str()),
            "--trace wants vcd|chrome|ascii"
        );
        smache.attach_telemetry(smache_sim::TelemetryConfig::default());
    }
    let sm_report = smache.run(&input, workload.instances).expect("smache run");
    if let Some(fmt) = &trace_fmt {
        let artifact = smache
            .export_trace(fmt, "smache")
            .expect("validated trace format");
        let ext = if fmt == "chrome" {
            "json"
        } else {
            fmt.as_str()
        };
        let out_path =
            arg_value(&args, "--trace-out").unwrap_or_else(|| format!("BENCH_fig2_trace.{ext}"));
        std::fs::write(&out_path, &artifact).expect("write trace artifact");
        println!("trace ({fmt}): {} bytes -> {out_path}\n", artifact.len());
    }

    // --- Validate both against the golden reference ----------------------
    let golden = golden_run(
        &workload.grid,
        &workload.bounds,
        &workload.shape,
        &AverageKernel,
        &input,
        workload.instances,
    )
    .expect("golden");
    assert_eq!(base_report.output, golden, "baseline output mismatch");
    assert_eq!(sm_report.output, golden, "smache output mismatch");
    println!("outputs verified against golden reference (both designs bit-identical)\n");

    // --- Absolute metrics (the table embedded in Fig. 2) ------------------
    println!("== Fig. 2: absolute metrics (this reproduction) ==");
    println!("{}", DesignMetrics::table_header());
    println!("{}", base_report.metrics.table_row());
    println!("{}", sm_report.metrics.table_row());
    println!();

    println!("== Fig. 2: paper-reported values ==");
    let mut paper = Table::new(vec![
        "Design",
        "Cycle-count",
        "Freq(MHz)",
        "DRAM-traffic(KB)",
        "Exec-time(us)",
        "Perf(MOPS)",
    ]);
    paper.row(vec![
        "Baseline", "64001", "372.9", "236.3", "171.6", "282.01",
    ]);
    paper.row(vec!["Smache", "14039", "235.3", "95.5", "59.7", "811.21"]);
    println!("{paper}");

    // --- Normalised chart (the bars of Fig. 2) ---------------------------
    let norm = sm_report.metrics.normalised_against(&base_report.metrics);
    println!("== Fig. 2: Smache normalised against baseline (bars) ==");
    let rows: Vec<(&str, f64, f64)> = vec![
        ("Cycle-count", norm.cycles, 14039.0 / 64001.0),
        ("Freq (MHz)", norm.fmax, 235.3 / 372.9),
        ("DRAM traffic", norm.traffic, 95.5 / 236.3),
        ("Sim exec time", norm.exec_time, 59.7 / 171.6),
        ("Perf (MOPS)", norm.mops, 811.21 / 282.01),
    ];
    let max = rows.iter().map(|r| r.1.max(r.2)).fold(1.0_f64, f64::max);
    let mut t = Table::new(vec!["Metric", "ours", "paper", "ours (bar)"]);
    for (name, ours, paper) in &rows {
        t.row(vec![
            name.to_string(),
            format!("{ours:.3}"),
            format!("{paper:.3}"),
            bar(*ours, max, 30),
        ]);
    }
    println!("{t}");
    println!(
        "overall simulated speed-up: {:.2}x (paper: {:.2}x)\n",
        norm.speedup(),
        171.6 / 59.7
    );

    // --- Temporal pipeline (beyond the paper) ------------------------------
    // With `--timesteps T [--channels C]`, chain T Smache stages so the
    // same `instances` grid updates take `instances / T` DRAM passes —
    // bit-exact with the single-step run, at a fraction of the traffic.
    if let Some((depth, channels)) = pipeline_args(&args) {
        assert_eq!(
            workload.instances % depth as u64,
            0,
            "--timesteps must divide the instance count ({})",
            workload.instances
        );
        let passes = workload.instances / depth as u64;
        let mut pipe = workload.pipeline(
            HybridMode::default(),
            smache::PipelineConfig {
                depth,
                channels,
                system: smache::system::smache_system::SystemConfig {
                    fault_plan: chaos,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let pipe_report = pipe.run(&input, passes).expect("pipeline run");
        assert_eq!(
            pipe_report.output, golden,
            "temporal pipeline output mismatch"
        );
        println!(
            "== Temporal pipeline: {depth} stage(s) x {passes} pass(es), {channels} channel(s) =="
        );
        println!("{}", DesignMetrics::table_header());
        println!("{}", sm_report.metrics.table_row());
        println!("{}", pipe_report.metrics.table_row());
        println!(
            "traffic vs single-step Smache: {:.2}x; output bit-exact with golden\n",
            pipe_report.metrics.traffic_kb() / sm_report.metrics.traffic_kb()
        );
    }

    // --- §IV resource prose ------------------------------------------------
    println!("== §IV resource comparison ==");
    let mut r = Table::new(vec!["Design", "ALMs", "Registers", "BRAM bits"]);
    let br = &base_report.metrics.resources;
    let sr = &sm_report.metrics.resources;
    r.row(vec![
        "Baseline (ours)".to_string(),
        br.alms.to_string(),
        br.registers.to_string(),
        br.bram_bits.to_string(),
    ]);
    r.row::<String>(vec![
        "Baseline (paper)".into(),
        "79".into(),
        "262".into(),
        "0".into(),
    ]);
    // The paper's prose quotes the Case-R build (998 buffer/controller
    // registers + ~90 kernel registers = 1088; 1.5K BRAM bits).
    let case_r = workload.smache(HybridMode::CaseR);
    let rr = case_r.resources();
    r.row(vec![
        "Smache-r (ours)".to_string(),
        rr.alms.to_string(),
        rr.registers.to_string(),
        rr.bram_bits.to_string(),
    ]);
    r.row::<String>(vec![
        "Smache-r (paper)".into(),
        "520".into(),
        "1088".into(),
        "1536".into(),
    ]);
    r.row(vec![
        "Smache-h (ours)".to_string(),
        sr.alms.to_string(),
        sr.registers.to_string(),
        sr.bram_bits.to_string(),
    ]);
    println!("{r}");
}

/// Multi-seed sweep: Smache lanes batched through
/// [`SmacheSystem::run_batch`] (capture the control schedule once, replay
/// it lane-batched for the other seeds — latency-only chaos replays too,
/// keyed on its chaos seed, while corrupting plans fall back to full
/// simulation per lane under the default auto mode), baseline lanes
/// through `parallel_map`, outputs cross-checked per seed, summary
/// written as JSON.
fn run_sweep(seeds: u64, mut flags: BatchFlags, json_path: &str, chaos: smache_mem::FaultPlan) {
    let workload = paper_problem(11, 11, 100);
    let jobs = flags.jobs;
    println!(
        "== Fig. 2 sweep: {seeds} seeds x {} instances, {jobs} job(s) ==",
        workload.instances
    );

    let config = smache::system::smache_system::SystemConfig {
        fault_plan: chaos,
        ..Default::default()
    };
    let smache_jobs: Vec<_> = workload
        .batch_jobs(0..seeds, HybridMode::default())
        .into_iter()
        .map(|j| j.with_config(config))
        .collect();
    let t0 = Instant::now();
    let batch = SmacheSystem::run_batch(smache_jobs, flags.options());
    let smache_wall = t0.elapsed();
    if let Some(store) = &flags.store {
        let s = store.stats();
        println!(
            "schedule store {}: {} hits, {} writes, {} entries",
            store.dir().display(),
            s.hits,
            s.writes,
            store.len()
        );
    }
    let replayed = batch
        .lanes
        .iter()
        .flatten()
        .filter(|l| l.engine == smache::system::RunEngine::Replay)
        .count();
    println!("schedule replay served {replayed}/{seeds} lanes");

    let lanes: Vec<(u64, &PaperWorkload)> = (0..seeds).map(|s| (s, &workload)).collect();
    let t0 = Instant::now();
    let base_reports = parallel_map(lanes, jobs, |&(seed, w)| {
        let mut baseline = w.baseline(BaselineConfig::default());
        baseline.run(&w.input(seed), w.instances).expect("baseline")
    });
    let base_wall = t0.elapsed();

    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "Seed",
        "Smache cycles",
        "Baseline cycles",
        "Cycle ratio",
        "Outputs",
    ]);
    for (seed, (lane, base)) in batch.lanes.iter().zip(&base_reports).enumerate() {
        let lane = lane.as_ref().expect("smache lane");
        let matches = lane.output == base.output;
        assert!(matches, "seed {seed}: smache and baseline outputs differ");
        let ratio = lane.metrics.cycles as f64 / base.metrics.cycles as f64;
        t.row(vec![
            seed.to_string(),
            lane.metrics.cycles.to_string(),
            base.metrics.cycles.to_string(),
            format!("{ratio:.3}"),
            "identical".to_string(),
        ]);
        rows.push(Json::obj(vec![
            ("seed", Json::Int(seed as i64)),
            ("smache_cycles", Json::Int(lane.metrics.cycles as i64)),
            ("baseline_cycles", Json::Int(base.metrics.cycles as i64)),
            ("cycle_ratio", Json::Num(ratio)),
            ("outputs_match", Json::Bool(matches)),
            ("transfers", Json::Int(lane.stats.transfers as i64)),
            ("engine", Json::str(lane.engine.label())),
        ]));
    }
    println!("{t}");
    println!(
        "wall-clock: smache lanes {:.1} ms, baseline lanes {:.1} ms ({jobs} job(s))",
        smache_wall.as_secs_f64() * 1e3,
        base_wall.as_secs_f64() * 1e3,
    );
    println!("aggregate (smache lanes): {}", batch.aggregate);

    let doc = Json::obj(vec![
        ("artefact", Json::str("fig2_sweep")),
        ("grid", Json::str("11x11")),
        ("instances", Json::Int(workload.instances as i64)),
        ("seeds", Json::Int(seeds as i64)),
        ("jobs", Json::Int(jobs as i64)),
        ("smache_wall_ms", Json::Num(smache_wall.as_secs_f64() * 1e3)),
        ("baseline_wall_ms", Json::Num(base_wall.as_secs_f64() * 1e3)),
        (
            "aggregate",
            Json::obj(vec![
                ("cycles", Json::Int(batch.aggregate.cycles as i64)),
                ("transfers", Json::Int(batch.aggregate.transfers as i64)),
                ("idle_cycles", Json::Int(batch.aggregate.idle_cycles as i64)),
                ("throughput", Json::Num(batch.aggregate.throughput())),
            ]),
        ),
        ("lanes", Json::Arr(rows)),
    ]);
    std::fs::write(json_path, doc.pretty()).expect("write sweep summary");
    println!("sweep summary written to {json_path}");
}
