//! Chaos resilience sweep: throughput degradation vs injected stall
//! fraction.
//!
//! Runs the paper's 11×11 workload under a ladder of stall-storm
//! intensities (plus the jitter/drain/heavy latency-only profiles),
//! verifies each run stays bit-exact against the golden reference, and
//! reports how the injected stall fraction degrades throughput. Writes a
//! machine-readable summary to `BENCH_chaos.json` (path overridable with
//! `--json PATH`).
//!
//! ```text
//! cargo run -p smache-bench --bin chaos --release -- --chaos-seed 7
//! ```

use smache::arch::kernel::AverageKernel;
use smache::functional::golden::golden_run;
use smache::system::smache_system::SystemConfig;
use smache::HybridMode;
use smache_bench::json::Json;
use smache_bench::report::{bar, Table};
use smache_bench::workloads::paper_problem;
use smache_mem::{ChaosProfile, FaultPlan};

/// `--flag value` (or `--flag=value`) lookup over raw args.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&format!("{flag}=")).map(str::to_string))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--chaos-seed")
        .map(|v| v.parse().expect("--chaos-seed wants a number"))
        .unwrap_or(7);
    let instances: u64 = arg_value(&args, "--instances")
        .map(|v| v.parse().expect("--instances wants a number"))
        .unwrap_or(50);
    let path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_chaos.json".into());
    let trace_fmt = arg_value(&args, "--trace");
    if let Some(fmt) = &trace_fmt {
        assert!(
            ["vcd", "chrome", "ascii"].contains(&fmt.as_str()),
            "--trace wants vcd|chrome|ascii"
        );
    }
    let trace_out = arg_value(&args, "--trace-out");

    let workload = paper_problem(11, 11, instances);
    let input = workload.ramp_input();
    let golden = golden_run(
        &workload.grid,
        &workload.bounds,
        &workload.shape,
        &AverageKernel,
        &input,
        instances,
    )
    .expect("golden");

    // The sweep: a storm-probability ladder, then the named latency-only
    // profiles for context.
    let mut points: Vec<(String, ChaosProfile)> = [0.0, 0.02, 0.05, 0.1, 0.2]
        .into_iter()
        .map(|p| {
            (
                format!("storms p={p}"),
                ChaosProfile {
                    stall_storm_prob: p,
                    stall_storm_max: 12,
                    ..ChaosProfile::none()
                },
            )
        })
        .collect();
    points.push(("jitter".into(), ChaosProfile::jitter()));
    points.push(("drain".into(), ChaosProfile::drain()));
    points.push(("heavy".into(), ChaosProfile::heavy()));

    let mut baseline_cycles = 0u64;
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "Profile",
        "Cycles",
        "Stall frac",
        "Storm cycles",
        "Slowdown",
        "Throughput",
    ]);
    println!("== Chaos sweep: 11x11, {instances} instance(s), seed {seed} ==\n");
    let n_points = points.len();
    for (point_ix, (label, profile)) in points.iter().enumerate() {
        let plan = FaultPlan::new(seed, *profile);
        let mut system = workload.smache_with(
            HybridMode::default(),
            SystemConfig {
                fault_plan: plan,
                ..SystemConfig::default()
            },
        );
        // Counters (stall attribution per fault kind) are always recorded;
        // the per-cycle probe event stream only when a trace was requested.
        system.attach_telemetry(smache_sim::TelemetryConfig::default());
        if trace_fmt.is_none() {
            if let Some(tel) = system.telemetry_mut() {
                tel.probes.set_enabled(false);
            }
        }
        let report = system
            .run(&input, instances)
            .expect("latency-only chaos must be absorbed");
        assert_eq!(report.output, golden, "{label}: chaos corrupted the output");
        if baseline_cycles == 0 {
            baseline_cycles = report.metrics.cycles;
        }
        let slowdown = report.metrics.cycles as f64 / baseline_cycles as f64;
        let throughput = 1.0 / slowdown;
        t.row(vec![
            label.clone(),
            report.metrics.cycles.to_string(),
            format!("{:.3}", report.stall_fraction()),
            report.metrics.faults.storm_cycles.to_string(),
            format!("{slowdown:.3}x"),
            bar(throughput, 1.0, 28),
        ]);
        let tel = report.telemetry.as_ref().expect("telemetry attached");
        let counters_obj = |pairs: Vec<(String, u64)>| {
            Json::Obj(
                pairs
                    .into_iter()
                    .map(|(name, v)| (name, Json::Int(v as i64)))
                    .collect(),
            )
        };
        rows.push(Json::obj(vec![
            ("profile", Json::str(label.clone())),
            ("cycles", Json::Int(report.metrics.cycles as i64)),
            ("stall_fraction", Json::Num(report.stall_fraction())),
            (
                "storm_cycles",
                Json::Int(report.metrics.faults.storm_cycles as i64),
            ),
            (
                "jitter_events",
                Json::Int(report.metrics.faults.jitter_events as i64),
            ),
            (
                "slow_drain_cycles",
                Json::Int(report.metrics.faults.slow_drain_cycles as i64),
            ),
            ("slowdown", Json::Num(slowdown)),
            ("output_matches_golden", Json::Bool(true)),
            (
                "telemetry",
                Json::obj(vec![
                    // Per-fault-kind stall attribution (cycles the datapath
                    // froze, keyed by cause) straight from the counters.
                    ("stall_attribution", counters_obj(tel.with_prefix("stall"))),
                    ("chaos_counters", counters_obj(tel.with_prefix("chaos"))),
                    ("fsm2_residency", counters_obj(tel.residency("fsm2"))),
                ]),
            ),
        ]));
        if let (Some(fmt), true) = (&trace_fmt, point_ix + 1 == n_points) {
            let artifact = system
                .export_trace(fmt, "smache")
                .expect("validated trace format");
            let ext = if *fmt == "chrome" {
                "json"
            } else {
                fmt.as_str()
            };
            let out_path = trace_out
                .clone()
                .unwrap_or_else(|| format!("BENCH_chaos_trace.{ext}"));
            std::fs::write(&out_path, &artifact).expect("write trace artifact");
            println!(
                "trace ({fmt}, profile `{label}`): {} bytes -> {out_path}",
                artifact.len()
            );
        }
    }
    println!("{t}");
    println!("every run verified bit-exact against the golden reference");

    let doc = Json::obj(vec![
        ("artefact", Json::str("chaos_sweep")),
        ("grid", Json::str("11x11")),
        ("instances", Json::Int(instances as i64)),
        ("chaos_seed", Json::Int(seed as i64)),
        ("baseline_cycles", Json::Int(baseline_cycles as i64)),
        ("points", Json::Arr(rows)),
    ]);
    std::fs::write(&path, doc.pretty()).expect("write json");
    println!("wrote {path}");
}
