//! Chaos resilience sweep: throughput degradation vs injected stall
//! fraction.
//!
//! Runs the paper's 11×11 workload under a ladder of stall-storm
//! intensities (plus the jitter/drain/heavy latency-only profiles),
//! verifies each run stays bit-exact against the golden reference, and
//! reports how the injected stall fraction degrades throughput. Writes a
//! machine-readable summary to `BENCH_chaos.json` (path overridable with
//! `--json PATH`).
//!
//! ```text
//! cargo run -p smache-bench --bin chaos --release -- --chaos-seed 7
//! ```
//!
//! With `--sweep N` the binary instead runs a **chaos-replay sweep**: one
//! latency-only profile (`--profile`, default `heavy`) at a fixed chaos
//! seed is swept across `N` data seeds through
//! [`SmacheSystem::run_batch`] — the chaotic control plane is captured
//! once and replayed for the other lanes. Every lane is verified
//! bit-exact against a replay-off run *and* against the golden
//! reference, and engine labels are reported. The sweep takes the shared
//! batch flag group (`--jobs`, `--replay`, `--store`, `--store-mb`,
//! `--lane-block`) — see [`smache_bench::flags`]:
//!
//! ```text
//! cargo run -p smache-bench --bin chaos --release -- --sweep 8 --chaos-seed 7
//! ```

use smache::arch::kernel::AverageKernel;
use smache::functional::golden::golden_run;
use smache::system::smache_system::SystemConfig;
use smache::system::{RunEngine, SmacheSystem};
use smache::HybridMode;
use smache_bench::flags::{arg_value, pipeline_args, BatchFlags};
use smache_bench::json::Json;
use smache_bench::report::{bar, Table};
use smache_bench::workloads::paper_problem;
use smache_mem::{ChaosProfile, FaultPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--chaos-seed")
        .map(|v| v.parse().expect("--chaos-seed wants a number"))
        .unwrap_or(7);
    let instances: u64 = arg_value(&args, "--instances")
        .map(|v| v.parse().expect("--instances wants a number"))
        .unwrap_or(50);
    let path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_chaos.json".into());
    if let Some(sweep) = arg_value(&args, "--sweep") {
        let data_seeds: u64 = sweep.parse().expect("--sweep wants a seed count");
        let profile_name = arg_value(&args, "--profile").unwrap_or_else(|| "heavy".into());
        let profile = ChaosProfile::from_name(&profile_name)
            .expect("--profile wants off|jitter|storms|drain|heavy|flip:<k>");
        assert!(
            profile.is_latency_only(),
            "--sweep verifies outputs against the golden reference, so it wants a \
             latency-only profile (off|jitter|storms|drain|heavy)"
        );
        let flags = BatchFlags::parse(&args, 1);
        run_replay_sweep(
            data_seeds,
            seed,
            &profile_name,
            profile,
            instances,
            flags,
            &path,
        );
        return;
    }
    let trace_fmt = arg_value(&args, "--trace");
    if let Some(fmt) = &trace_fmt {
        assert!(
            ["vcd", "chrome", "ascii"].contains(&fmt.as_str()),
            "--trace wants vcd|chrome|ascii"
        );
    }
    let trace_out = arg_value(&args, "--trace-out");
    // `--timesteps T [--channels C]`: run the ladder through the temporal
    // pipeline instead of the single-step system — chaos is absorbed (and
    // attributed per channel) exactly the same way.
    let pipe_geometry = pipeline_args(&args);
    if let Some((depth, _)) = pipe_geometry {
        assert!(
            trace_fmt.is_none(),
            "--trace drives the single-step system; drop it for --timesteps runs"
        );
        assert_eq!(
            instances % depth as u64,
            0,
            "--timesteps must divide --instances ({instances})"
        );
    }

    let workload = paper_problem(11, 11, instances);
    let input = workload.ramp_input();
    let golden = golden_run(
        &workload.grid,
        &workload.bounds,
        &workload.shape,
        &AverageKernel,
        &input,
        instances,
    )
    .expect("golden");

    // The sweep: a storm-probability ladder, then the named latency-only
    // profiles for context.
    let mut points: Vec<(String, ChaosProfile)> = [0.0, 0.02, 0.05, 0.1, 0.2]
        .into_iter()
        .map(|p| {
            (
                format!("storms p={p}"),
                ChaosProfile {
                    stall_storm_prob: p,
                    stall_storm_max: 12,
                    ..ChaosProfile::none()
                },
            )
        })
        .collect();
    points.push(("jitter".into(), ChaosProfile::jitter()));
    points.push(("drain".into(), ChaosProfile::drain()));
    points.push(("heavy".into(), ChaosProfile::heavy()));

    let mut baseline_cycles = 0u64;
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "Profile",
        "Cycles",
        "Stall frac",
        "Storm cycles",
        "Slowdown",
        "Throughput",
    ]);
    println!("== Chaos sweep: 11x11, {instances} instance(s), seed {seed} ==\n");
    let n_points = points.len();
    for (point_ix, (label, profile)) in points.iter().enumerate() {
        let plan = FaultPlan::new(seed, *profile);
        let config = SystemConfig {
            fault_plan: plan,
            ..SystemConfig::default()
        };
        if let Some((depth, channels)) = pipe_geometry {
            let mut pipe = workload.pipeline(
                HybridMode::default(),
                smache::PipelineConfig {
                    depth,
                    channels,
                    system: config,
                    ..Default::default()
                },
            );
            pipe.attach_telemetry(smache_sim::TelemetryConfig::default());
            if let Some(tel) = pipe.telemetry_mut() {
                tel.probes.set_enabled(false);
            }
            let report = pipe
                .run(&input, instances / depth as u64)
                .expect("latency-only chaos must be absorbed");
            push_point(
                label,
                &report,
                &golden,
                &mut baseline_cycles,
                &mut t,
                &mut rows,
            );
            continue;
        }
        let mut system = workload.smache_with(HybridMode::default(), config);
        // Counters (stall attribution per fault kind) are always recorded;
        // the per-cycle probe event stream only when a trace was requested.
        system.attach_telemetry(smache_sim::TelemetryConfig::default());
        if trace_fmt.is_none() {
            if let Some(tel) = system.telemetry_mut() {
                tel.probes.set_enabled(false);
            }
        }
        let report = system
            .run(&input, instances)
            .expect("latency-only chaos must be absorbed");
        push_point(
            label,
            &report,
            &golden,
            &mut baseline_cycles,
            &mut t,
            &mut rows,
        );
        if let (Some(fmt), true) = (&trace_fmt, point_ix + 1 == n_points) {
            let artifact = system
                .export_trace(fmt, "smache")
                .expect("validated trace format");
            let ext = if *fmt == "chrome" {
                "json"
            } else {
                fmt.as_str()
            };
            let out_path = trace_out
                .clone()
                .unwrap_or_else(|| format!("BENCH_chaos_trace.{ext}"));
            std::fs::write(&out_path, &artifact).expect("write trace artifact");
            println!(
                "trace ({fmt}, profile `{label}`): {} bytes -> {out_path}",
                artifact.len()
            );
        }
    }
    println!("{t}");
    println!("every run verified bit-exact against the golden reference");

    let doc = Json::obj(vec![
        ("artefact", Json::str("chaos_sweep")),
        ("grid", Json::str("11x11")),
        ("instances", Json::Int(instances as i64)),
        ("chaos_seed", Json::Int(seed as i64)),
        ("baseline_cycles", Json::Int(baseline_cycles as i64)),
        ("points", Json::Arr(rows)),
    ]);
    std::fs::write(&path, doc.pretty()).expect("write json");
    println!("wrote {path}");
}

/// One ladder point: golden check, slowdown vs the clean first point, a
/// table row and a JSON row (with the telemetry stall attribution). The
/// single-step system and the temporal pipeline report identically.
fn push_point(
    label: &str,
    report: &smache::system::RunReport,
    golden: &[u64],
    baseline_cycles: &mut u64,
    t: &mut Table,
    rows: &mut Vec<Json>,
) {
    assert_eq!(report.output, golden, "{label}: chaos corrupted the output");
    if *baseline_cycles == 0 {
        *baseline_cycles = report.metrics.cycles;
    }
    let slowdown = report.metrics.cycles as f64 / *baseline_cycles as f64;
    let throughput = 1.0 / slowdown;
    t.row(vec![
        label.to_string(),
        report.metrics.cycles.to_string(),
        format!("{:.3}", report.stall_fraction()),
        report.metrics.faults.storm_cycles.to_string(),
        format!("{slowdown:.3}x"),
        bar(throughput, 1.0, 28),
    ]);
    let tel = report.telemetry.as_ref().expect("telemetry attached");
    let counters_obj = |pairs: Vec<(String, u64)>| {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(name, v)| (name, Json::Int(v as i64)))
                .collect(),
        )
    };
    rows.push(Json::obj(vec![
        ("profile", Json::str(label)),
        ("cycles", Json::Int(report.metrics.cycles as i64)),
        ("stall_fraction", Json::Num(report.stall_fraction())),
        (
            "storm_cycles",
            Json::Int(report.metrics.faults.storm_cycles as i64),
        ),
        (
            "jitter_events",
            Json::Int(report.metrics.faults.jitter_events as i64),
        ),
        (
            "slow_drain_cycles",
            Json::Int(report.metrics.faults.slow_drain_cycles as i64),
        ),
        ("slowdown", Json::Num(slowdown)),
        ("output_matches_golden", Json::Bool(true)),
        (
            "telemetry",
            Json::obj(vec![
                // Per-fault-kind stall attribution (cycles the datapath
                // froze, keyed by cause) straight from the counters.
                ("stall_attribution", counters_obj(tel.with_prefix("stall"))),
                ("chaos_counters", counters_obj(tel.with_prefix("chaos"))),
                ("fsm2_residency", counters_obj(tel.residency("fsm2"))),
            ]),
        ),
    ]));
}

/// The chaos-replay sweep (`--sweep N`): a fixed `(chaos_seed, profile)`
/// fault plan across `N` data seeds, replay vs full simulation, every
/// lane golden-verified.
fn run_replay_sweep(
    data_seeds: u64,
    chaos_seed: u64,
    profile_name: &str,
    profile: ChaosProfile,
    instances: u64,
    mut flags: BatchFlags,
    json_path: &str,
) {
    use std::time::Instant;

    use smache::system::{BatchOptions, ReplayMode};

    let workload = paper_problem(11, 11, instances);
    let config = SystemConfig {
        fault_plan: FaultPlan::new(chaos_seed, profile),
        ..SystemConfig::default()
    };
    let make_jobs = || -> Vec<_> {
        workload
            .batch_jobs(0..data_seeds, HybridMode::default())
            .into_iter()
            .map(|j| j.with_config(config))
            .collect()
    };
    println!(
        "== chaos-replay sweep: profile `{profile_name}`, chaos seed {chaos_seed}, \
         {data_seeds} data seeds x {instances} instance(s), {} job(s) ==\n",
        flags.jobs
    );

    let t0 = Instant::now();
    let full = SmacheSystem::run_batch(
        make_jobs(),
        BatchOptions::new()
            .threads(flags.jobs)
            .replay(ReplayMode::Off),
    );
    let full_wall = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let fast = SmacheSystem::run_batch(make_jobs(), flags.options());
    let fast_wall = t0.elapsed().as_secs_f64() * 1e3;

    let mut rows = Vec::new();
    let mut t = Table::new(vec!["Seed", "Engine", "Cycles", "Storm cycles", "Outputs"]);
    let mut replayed = 0usize;
    for (seed, (a, b)) in full.lanes.iter().zip(&fast.lanes).enumerate() {
        let (a, b) = (
            a.as_ref().expect("full lane"),
            b.as_ref().expect("fast lane"),
        );
        assert_eq!(a.output, b.output, "seed {seed}: replay diverged");
        assert_eq!(a.stats, b.stats, "seed {seed}: cycle accounting diverged");
        let golden = golden_run(
            &workload.grid,
            &workload.bounds,
            &workload.shape,
            &AverageKernel,
            &workload.input(seed as u64),
            instances,
        )
        .expect("golden");
        assert_eq!(b.output, golden, "seed {seed}: chaos corrupted the output");
        if b.engine == RunEngine::Replay {
            replayed += 1;
        }
        t.row(vec![
            seed.to_string(),
            b.engine.label().to_string(),
            b.metrics.cycles.to_string(),
            b.metrics.faults.storm_cycles.to_string(),
            "identical".to_string(),
        ]);
        rows.push(Json::obj(vec![
            ("seed", Json::Int(seed as i64)),
            ("engine", Json::str(b.engine.label())),
            ("cycles", Json::Int(b.metrics.cycles as i64)),
            (
                "storm_cycles",
                Json::Int(b.metrics.faults.storm_cycles as i64),
            ),
            ("output_matches_golden", Json::Bool(true)),
            ("matches_full_sim", Json::Bool(true)),
        ]));
    }
    println!("{t}");
    println!(
        "full {full_wall:.1} ms, replay {fast_wall:.1} ms ({:.2}x); \
         {replayed}/{data_seeds} lanes served by replay, all bit-exact vs full sim and golden",
        full_wall / fast_wall
    );

    let doc = Json::obj(vec![
        ("artefact", Json::str("chaos_replay_sweep")),
        ("grid", Json::str("11x11")),
        ("instances", Json::Int(instances as i64)),
        ("profile", Json::str(profile_name)),
        ("chaos_seed", Json::Int(chaos_seed as i64)),
        ("data_seeds", Json::Int(data_seeds as i64)),
        ("full_ms", Json::Num(full_wall)),
        ("replay_ms", Json::Num(fast_wall)),
        ("speedup", Json::Num(full_wall / fast_wall)),
        ("replayed_lanes", Json::Int(replayed as i64)),
        ("lanes", Json::Arr(rows)),
    ]);
    std::fs::write(json_path, doc.pretty()).expect("write json");
    println!("wrote {json_path}");
}
