//! Ablation studies motivated by §III of the paper.
//!
//! 1. **Hybrid stretch threshold** — sweeping `min_bram_stretch` walks the
//!    register↔BRAM trade-off between Case-R and Case-H.
//! 2. **Grid-size scaling** — how the baseline/Smache cycle and traffic
//!    gaps grow with the grid (the baseline hits the DRAM row-miss cliff
//!    once rows no longer share DRAM rows).
//! 3. **Planning strategies** — paper's per-range Algorithm 1 (greedy and
//!    exact) vs the global window search.
//! 4. **Baseline pipelining depth** — how forgiving the comparison is to a
//!    smarter baseline.
//! 5. **DRAM row-miss penalty** — sensitivity of the speed-up to memory
//!    timing on a bank-conflicting grid.
//! 6. **Double buffering** — the paper's transparent swap vs re-prefetching
//!    the static buffers every instance.
//! 7. **Lane scaling** — spatial parallelism throughput (P-lane Smache).
//!
//! ```text
//! cargo run -p smache-bench --bin ablations --release
//! ```

use smache::cost::{CostEstimate, SynthesisModel};
use smache::{Algorithm1, HybridMode, PlanStrategy, SmacheBuilder};
use smache_baseline::BaselineConfig;
use smache_bench::report::Table;
use smache_bench::sweep::parallel_map;
use smache_bench::workloads::paper_problem;
use smache_mem::DramConfig;
use smache_stencil::GridSpec;

fn main() {
    hybrid_threshold_sweep();
    grid_size_scaling();
    strategy_comparison();
    baseline_pipelining();
    row_miss_sensitivity();
    double_buffering();
    lane_scaling();
}

/// Ablation 1: the register↔BRAM continuum.
fn hybrid_threshold_sweep() {
    println!("== Ablation 1: hybrid stretch threshold (1024x1024 plan) ==");
    let mut t = Table::new(vec!["mode", "Rsm bits", "Bsm bits", "Rtotal", "Btotal"]);
    let mut modes: Vec<(String, HybridMode)> = vec![("Case-R".into(), HybridMode::CaseR)];
    for thr in [3usize, 8, 64, 512, 1024] {
        modes.push((
            format!("Case-H(min={thr})"),
            HybridMode::CaseH {
                min_bram_stretch: thr,
            },
        ));
    }
    for (label, hybrid) in modes {
        let plan = SmacheBuilder::new(GridSpec::d2(1024, 1024).expect("valid"))
            .hybrid(hybrid)
            .plan()
            .expect("plan");
        let m = SynthesisModel.memory(&plan);
        t.row(vec![
            label,
            m.r_stream.to_string(),
            m.b_stream.to_string(),
            m.r_total().to_string(),
            m.b_total().to_string(),
        ]);
    }
    println!("{t}");
}

/// Ablation 2: scaling of the baseline/Smache gap with grid size.
fn grid_size_scaling() {
    println!("== Ablation 2: grid-size scaling (4 instances each) ==");
    let sizes: Vec<usize> = vec![11, 16, 32, 64, 128];
    let rows = parallel_map(sizes, 8, |&dim| {
        let workload = paper_problem(dim, dim, 4);
        let input = workload.ramp_input();
        let mut sm = workload.smache(HybridMode::default());
        let mut bl = workload.baseline(BaselineConfig::default());
        let rs = sm.run(&input, 4).expect("smache");
        let rb = bl.run(&input, 4).expect("baseline");
        assert_eq!(rs.output, rb.output);
        (
            dim,
            rb.metrics.cycles as f64 / rs.metrics.cycles as f64,
            rb.metrics.traffic_kb() / rs.metrics.traffic_kb(),
            rb.metrics.exec_us() / rs.metrics.exec_us(),
        )
    });
    let mut t = Table::new(vec!["grid", "cycle ratio", "traffic ratio", "speed-up"]);
    for (dim, cyc, traffic, speedup) in rows {
        t.row(vec![
            format!("{dim}x{dim}"),
            format!("{cyc:.2}x"),
            format!("{traffic:.2}x"),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("{t}");
}

/// Ablation 3: planning strategy comparison (formal-model words).
fn strategy_comparison() {
    println!("== Ablation 3: planning strategies (buffer words) ==");
    let mut t = Table::new(vec![
        "problem",
        "strategy",
        "stream words",
        "static words",
        "total bits",
    ]);
    for (h, w) in [(11usize, 11usize), (64, 64), (8, 512)] {
        for (label, strategy) in [
            (
                "per-range greedy",
                PlanStrategy::PerRange(Algorithm1::Greedy),
            ),
            ("per-range exact", PlanStrategy::PerRange(Algorithm1::Exact)),
            ("global window", PlanStrategy::GlobalWindow),
        ] {
            let plan = SmacheBuilder::new(GridSpec::d2(h, w).expect("valid"))
                .strategy(strategy)
                .plan()
                .expect("plan");
            t.row(vec![
                format!("{h}x{w}"),
                label.to_string(),
                (plan.lookahead + plan.lookback + 1).to_string(),
                plan.static_words().to_string(),
                CostEstimate.total_bits(&plan).to_string(),
            ]);
        }
    }
    println!("{t}");
}

/// Ablation 4: baseline in-flight depth.
fn baseline_pipelining() {
    println!("== Ablation 4: baseline gather pipelining (11x11, 20 instances) ==");
    let workload = paper_problem(11, 11, 20);
    let input = workload.ramp_input();
    let depths: Vec<usize> = vec![1, 2, 4, 8];
    let rows = parallel_map(depths, 4, |&d| {
        let mut bl = workload.baseline(BaselineConfig {
            max_inflight_elements: d,
            ..BaselineConfig::default()
        });
        let r = bl.run(&input, 20).expect("baseline");
        (d, r.metrics.cycles)
    });
    let mut t = Table::new(vec!["in-flight elements", "cycles", "cycles/point"]);
    for (d, cycles) in rows {
        t.row(vec![
            d.to_string(),
            cycles.to_string(),
            format!("{:.2}", cycles as f64 / (121.0 * 20.0)),
        ]);
    }
    println!("{t}");
}

/// Ablation 5: DRAM row-miss penalty sensitivity.
///
/// Uses an 8×2048 grid: a 2048-word row stride is a whole multiple of
/// `row_words × num_banks`, so every north/south neighbour read lands in
/// the *same bank* as the centre row and thrashes its open row — the
/// pathological random-access regime the paper's introduction warns about.
/// Smache turns the same accesses into pure streaming, so the gap scales
/// with the penalty.
fn row_miss_sensitivity() {
    println!("== Ablation 5: DRAM row-miss penalty (8x2048 bank-conflict grid, 2 instances) ==");
    let penalties: Vec<u64> = vec![0, 2, 6, 12, 24];
    let rows = parallel_map(penalties, 8, |&p| {
        let workload = paper_problem(8, 2048, 2);
        let input = workload.ramp_input();
        let dram = DramConfig {
            row_miss_penalty: p,
            ..DramConfig::default()
        };
        let mut sm = workload.smache_with(
            HybridMode::default(),
            smache::system::smache_system::SystemConfig {
                dram,
                ..Default::default()
            },
        );
        let mut bl = workload.baseline(BaselineConfig {
            dram,
            ..BaselineConfig::default()
        });
        let rs = sm.run(&input, 2).expect("smache");
        let rb = bl.run(&input, 2).expect("baseline");
        (p, rb.metrics.cycles as f64 / rs.metrics.cycles as f64)
    });
    let mut t = Table::new(vec![
        "row-miss penalty (cycles)",
        "baseline/smache cycle ratio",
    ]);
    for (p, ratio) in rows {
        t.row(vec![p.to_string(), format!("{ratio:.2}x")]);
    }
    println!("{t}");
}

/// Ablation 7: spatial parallelism — P-lane Smache throughput.
fn lane_scaling() {
    use smache::arch::kernel::AverageKernel;
    use smache::system::multilane::MultilaneSystem;
    println!("== Ablation 7: lane scaling (64x64 open boundaries, 4 instances) ==");
    let grid = GridSpec::d2(64, 64).expect("valid");
    let bounds = smache_stencil::BoundarySpec::all_open(2).expect("bounds");
    let input: Vec<u64> = (0..4096u64).collect();
    let lanes_list: Vec<usize> = vec![1, 2, 4, 8];
    let rows = parallel_map(lanes_list, 4, |&lanes| {
        let plan = SmacheBuilder::new(grid.clone())
            .boundaries(bounds.clone())
            .plan()
            .expect("plan");
        let mut sys = MultilaneSystem::new(
            plan,
            Box::new(AverageKernel),
            lanes,
            smache::system::smache_system::SystemConfig::default(),
        )
        .expect("system");
        let r = sys.run(&input, 4).expect("run");
        (
            lanes,
            r.metrics.cycles,
            r.metrics.fmax_mhz,
            r.metrics.exec_us(),
        )
    });
    let mut t = Table::new(vec!["lanes", "cycles", "Fmax (MHz)", "exec time (us)"]);
    let base = rows[0].3;
    for (lanes, cycles, fmax, us) in rows {
        t.row(vec![
            format!("{lanes} ({:.2}x)", base / us),
            cycles.to_string(),
            format!("{fmax:.1}"),
            format!("{us:.1}"),
        ]);
    }
    println!("{t}");
}

/// Ablation 6: the paper's transparent double buffering vs re-prefetching
/// the static buffers at every instance boundary.
fn double_buffering() {
    println!("== Ablation 6: static-buffer double buffering (20 instances) ==");
    let mut t = Table::new(vec![
        "grid",
        "with double buffering",
        "re-prefetch per instance",
        "overhead",
    ]);
    for dim in [11usize, 32, 64] {
        let workload = paper_problem(dim, dim, 20);
        let input = workload.ramp_input();
        let mut db = workload.smache(HybridMode::default());
        let with_db = db.run(&input, 20).expect("smache").metrics.cycles;
        let mut nodb = workload.smache_with(
            HybridMode::default(),
            smache::system::smache_system::SystemConfig {
                double_buffering: false,
                ..Default::default()
            },
        );
        let without = nodb.run(&input, 20).expect("smache").metrics.cycles;
        t.row(vec![
            format!("{dim}x{dim}"),
            with_db.to_string(),
            without.to_string(),
            format!("+{:.1}%", 100.0 * (without as f64 / with_db as f64 - 1.0)),
        ]);
    }
    println!("{t}");
}
