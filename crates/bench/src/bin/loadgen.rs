//! Load generator for `smache serve`: throughput, latency percentiles,
//! and cache effectiveness versus request repeat ratio.
//!
//! For each repeat ratio (0% / 50% / 100%) a fresh server is started on a
//! Unix socket and driven two ways:
//!
//! * **closed loop** — C client threads (sharded with the same
//!   [`run_batch`] primitive the simulator uses),
//!   each holding one connection and issuing requests in lockstep;
//!   per-request latencies give p50/p95/p99.
//! * **open loop** — one connection pipelines every request before
//!   reading any response; wall time gives peak throughput unthrottled
//!   by client think-time.
//!
//! A "repeat" re-issues one hot request (same spec, same seed — a cache
//! hit after first execution); a "unique" request uses a fresh seed and
//! must simulate. The headline check: 100%-repeat throughput must beat
//! 0%-repeat by a wide margin, demonstrating the content-addressed cache.
//! The ratio sweep runs with the schedule cache *disabled* so it measures
//! the result cache alone; a final pass re-runs the all-unique workload
//! with the schedule cache enabled, demonstrating the second-level cache:
//! same-spec/fresh-seed traffic is served by replaying the captured
//! control schedule instead of simulating.
//! Results land in `BENCH_serve.json` (`--json PATH` overrides).
//!
//! ```text
//! cargo run -p smache-bench --bin loadgen --release
//! ```

use std::time::Instant;

use smache_bench::json::Json;
use smache_bench::report::Table;
use smache_serve::{start, Client, Listen, ServeConfig};
use smache_sim::run_batch;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&format!("{flag}=")).map(str::to_string))
        })
}

/// The benchmark workload: expensive enough that a miss visibly
/// simulates, small enough that a full sweep stays in seconds.
const GRID: &str = "32x32";
const INSTANCES: u64 = 2;
/// The hot request every "repeat" re-issues.
const HOT_SEED: u64 = 42;

fn request_line(id: usize, seed: u64) -> Json {
    Json::obj(vec![
        ("id", Json::str(format!("r{id}"))),
        ("cmd", Json::str("simulate")),
        ("spec", Json::obj(vec![("grid", Json::str(GRID))])),
        ("seed", Json::Int(seed as i64)),
        ("instances", Json::Int(INSTANCES as i64)),
    ])
}

/// The seed for request `j` of client `client` at `repeat_pct`:
/// repeats hit [`HOT_SEED`], uniques never collide across clients.
fn seed_for(repeat_pct: u32, client: usize, j: usize) -> u64 {
    let is_repeat = match repeat_pct {
        0 => false,
        100 => true,
        _ => j.is_multiple_of(2),
    };
    if is_repeat {
        HOT_SEED
    } else {
        1_000 + (client as u64) * 10_000 + j as u64
    }
}

struct LoopResult {
    wall_s: f64,
    latencies_us: Vec<u64>,
    hits: u64,
    oks: u64,
    rejected: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn closed_loop(addr: &str, clients: usize, per_client: usize, repeat_pct: u32) -> LoopResult {
    let started = Instant::now();
    let shards = run_batch((0..clients).collect(), clients, |client| {
        let mut conn = Client::connect(addr).expect("connect");
        let mut latencies = Vec::with_capacity(per_client);
        let (mut hits, mut oks, mut rejected) = (0u64, 0u64, 0u64);
        for j in 0..per_client {
            let req = request_line(client * per_client + j, seed_for(repeat_pct, client, j));
            let t0 = Instant::now();
            let resp = conn.call(&req).expect("call");
            latencies.push(t0.elapsed().as_micros() as u64);
            match resp.get("status").and_then(Json::as_str) {
                Some("ok") => {
                    oks += 1;
                    if resp.get("cached").and_then(Json::as_bool) == Some(true) {
                        hits += 1;
                    }
                }
                Some("rejected") => rejected += 1,
                other => panic!("unexpected response status {other:?}"),
            }
        }
        (latencies, hits, oks, rejected)
    });
    let wall_s = started.elapsed().as_secs_f64();
    let mut out = LoopResult {
        wall_s,
        latencies_us: Vec::new(),
        hits: 0,
        oks: 0,
        rejected: 0,
    };
    for (lat, hits, oks, rejected) in shards {
        out.latencies_us.extend(lat);
        out.hits += hits;
        out.oks += oks;
        out.rejected += rejected;
    }
    out.latencies_us.sort_unstable();
    out
}

fn open_loop(addr: &str, total: usize, repeat_pct: u32) -> LoopResult {
    // Client id 999 keeps open-loop unique seeds disjoint from the
    // closed-loop pass's, so 0%-repeat traffic really misses.
    let mut conn = Client::connect(addr).expect("connect");
    let started = Instant::now();
    for j in 0..total {
        conn.send(&request_line(j, seed_for(repeat_pct, 999, j)))
            .expect("send");
    }
    let (mut hits, mut oks, mut rejected) = (0u64, 0u64, 0u64);
    for _ in 0..total {
        let resp = conn.recv().expect("recv");
        match resp.get("status").and_then(Json::as_str) {
            Some("ok") => {
                oks += 1;
                if resp.get("cached").and_then(Json::as_bool) == Some(true) {
                    hits += 1;
                }
            }
            _ => rejected += 1,
        }
    }
    LoopResult {
        wall_s: started.elapsed().as_secs_f64(),
        latencies_us: Vec::new(),
        hits,
        oks,
        rejected,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = arg_value(&args, "--clients")
        .map(|v| v.parse().expect("--clients wants a number"))
        .unwrap_or(4);
    let per_client: usize = arg_value(&args, "--requests")
        .map(|v| v.parse().expect("--requests wants a number"))
        .unwrap_or(16);
    let workers: usize = arg_value(&args, "--workers")
        .map(|v| v.parse().expect("--workers wants a number"))
        .unwrap_or(4);
    let path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_serve.json".into());

    let total = clients * per_client;
    println!(
        "== serve loadgen: {GRID} x{INSTANCES}, {clients} clients x {per_client} requests, {workers} workers ==\n"
    );

    let mut table = Table::new(vec![
        "Repeat", "Mode", "req/s", "p50 us", "p95 us", "p99 us", "hit rate", "rejected",
    ]);
    let mut rows = Vec::new();
    let mut closed_rps = std::collections::BTreeMap::new();

    for repeat_pct in [0u32, 50, 100] {
        // A fresh server per ratio: cold cache, zeroed metrics. The
        // open-loop pass reuses the closed-loop pass's warm cache, so it
        // measures steady-state repeat traffic.
        let sock = std::env::temp_dir().join(format!(
            "smache-loadgen-{}-{repeat_pct}.sock",
            std::process::id()
        ));
        let handle = start(ServeConfig {
            listen: Listen::Unix(sock.clone()),
            workers,
            queue_cap: clients * 2 + total,
            cache_bytes: 64 << 20,
            // Schedule cache off: this sweep isolates the result cache.
            // (Enabled, it would replay every unique-seed request of the
            // same spec and flatten the very ratio being measured.)
            schedule_cache_bytes: 0,
            store_dir: None,
            store_bytes: 0,
            default_deadline_ms: None,
        })
        .expect("server starts");
        let addr = handle.addr().to_string();

        let closed = closed_loop(&addr, clients, per_client, repeat_pct);
        let open = open_loop(&addr, total, repeat_pct);
        handle.shutdown();

        for (mode, r) in [("closed", &closed), ("open", &open)] {
            let rps = r.oks as f64 / r.wall_s;
            let hit_rate = if r.oks == 0 {
                0.0
            } else {
                r.hits as f64 / r.oks as f64
            };
            let (p50, p95, p99) = (
                percentile(&r.latencies_us, 0.50),
                percentile(&r.latencies_us, 0.95),
                percentile(&r.latencies_us, 0.99),
            );
            let cell = |v: u64| {
                if r.latencies_us.is_empty() {
                    "-".into()
                } else {
                    v.to_string()
                }
            };
            table.row(vec![
                format!("{repeat_pct}%"),
                mode.to_string(),
                format!("{rps:.0}"),
                cell(p50),
                cell(p95),
                cell(p99),
                format!("{:.2}", hit_rate),
                r.rejected.to_string(),
            ]);
            rows.push(Json::obj(vec![
                ("repeat_pct", Json::Int(repeat_pct as i64)),
                ("mode", Json::str(mode)),
                ("requests", Json::Int(r.oks as i64)),
                ("throughput_rps", Json::Num(rps)),
                ("p50_us", Json::Int(p50 as i64)),
                ("p95_us", Json::Int(p95 as i64)),
                ("p99_us", Json::Int(p99 as i64)),
                ("hit_rate", Json::Num(hit_rate)),
                ("rejected", Json::Int(r.rejected as i64)),
            ]));
            if mode == "closed" {
                closed_rps.insert(repeat_pct, rps);
            }
        }
    }

    println!("{table}");

    let speedup = closed_rps[&100] / closed_rps[&0];
    println!("cache speedup (100% vs 0% repeats, closed loop): {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "content-addressed cache must yield >= 5x throughput on repeat traffic, got {speedup:.1}x"
    );

    // Second-level cache: the same all-unique workload (same spec, fresh
    // seed every request — the result cache never hits) with the schedule
    // cache enabled. The first request captures its control schedule;
    // every later request replays it instead of simulating.
    let sock =
        std::env::temp_dir().join(format!("smache-loadgen-{}-sched.sock", std::process::id()));
    let handle = start(ServeConfig {
        listen: Listen::Unix(sock.clone()),
        workers,
        queue_cap: clients * 2 + total,
        cache_bytes: 64 << 20,
        schedule_cache_bytes: 4 << 20,
        store_dir: None,
        store_bytes: 0,
        default_deadline_ms: None,
    })
    .expect("server starts");
    let sched = closed_loop(handle.addr(), clients, per_client, 0);
    handle.shutdown();
    let sched_rps = sched.oks as f64 / sched.wall_s;
    let sched_speedup = sched_rps / closed_rps[&0];
    println!(
        "schedule-cache speedup (0% repeats, replay vs full sim, closed loop): {sched_speedup:.1}x"
    );
    assert!(
        sched.hits == 0,
        "unique-seed traffic must never hit the result cache, got {} hits",
        sched.hits
    );
    assert!(
        sched_speedup >= 2.0,
        "schedule replay must yield >= 2x throughput on same-spec unique-seed traffic, got {sched_speedup:.1}x"
    );
    rows.push(Json::obj(vec![
        ("repeat_pct", Json::Int(0)),
        ("mode", Json::str("closed+schedule_cache")),
        ("requests", Json::Int(sched.oks as i64)),
        ("throughput_rps", Json::Num(sched_rps)),
        (
            "p50_us",
            Json::Int(percentile(&sched.latencies_us, 0.50) as i64),
        ),
        (
            "p95_us",
            Json::Int(percentile(&sched.latencies_us, 0.95) as i64),
        ),
        (
            "p99_us",
            Json::Int(percentile(&sched.latencies_us, 0.99) as i64),
        ),
        ("hit_rate", Json::Num(0.0)),
        ("rejected", Json::Int(sched.rejected as i64)),
    ]));

    let doc = Json::obj(vec![
        ("bench", Json::str("serve_loadgen")),
        ("grid", Json::str(GRID)),
        ("instances", Json::Int(INSTANCES as i64)),
        ("clients", Json::Int(clients as i64)),
        ("requests_per_client", Json::Int(per_client as i64)),
        ("workers", Json::Int(workers as i64)),
        ("cache_speedup_closed", Json::Num(speedup)),
        ("schedule_speedup_closed", Json::Num(sched_speedup)),
        ("rows", Json::Arr(rows)),
    ]);
    std::fs::write(&path, doc.pretty()).expect("write json");
    println!("wrote {path}");
}
