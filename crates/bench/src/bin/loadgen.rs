//! Load generator for `smache serve`: throughput, latency percentiles,
//! and cache effectiveness versus request repeat ratio — plus a
//! concurrency-ramp mode that stress-tests the epoll reactor.
//!
//! **Repeat-ratio sweep** (the default): for each repeat ratio
//! (0% / 50% / 100%) a fresh server is started on a Unix socket and
//! driven two ways:
//!
//! * **closed loop** — C client threads (sharded with the same
//!   [`run_batch`] primitive the simulator uses),
//!   each holding one connection and issuing requests in lockstep;
//!   per-request latencies give p50/p95/p99.
//! * **open loop** — one connection pipelines every request before
//!   reading any response; wall time gives peak throughput unthrottled
//!   by client think-time.
//!
//! A "repeat" re-issues one hot request (same spec, same seed — a cache
//! hit after first execution); a "unique" request uses a fresh seed and
//! must simulate. The headline check: 100%-repeat throughput must beat
//! 0%-repeat by a wide margin, demonstrating the content-addressed cache.
//! The ratio sweep runs with the schedule cache *disabled* so it measures
//! the result cache alone; a final pass re-runs the all-unique workload
//! with the schedule cache enabled, demonstrating the second-level cache:
//! same-spec/fresh-seed traffic is served by replaying the captured
//! control schedule instead of simulating.
//! Results land in `BENCH_serve.json` (`--json PATH` overrides).
//!
//! **Concurrency ramp** (`--ramp`): one server (adaptive admission on,
//! small queue) is driven by open-loop client rungs of 16 → 4096
//! connections (capped by `--max-clients`). Every rung is half
//! *replay-class* clients (the warm hot spec with fresh seeds — the
//! schedule cache is resident, so admission classifies them cheap) and
//! half *capture-class* clients (a never-repeated spec per request — a
//! cold capture every time). Each client pipelines its requests and then
//! drains responses, so at high rungs the queue saturates and admission
//! control decides who gets rejected. Per rung and class the ramp
//! records p50/p95/p99 latency, reject rates, and process RSS, and
//! asserts that at overload (>= 1024 clients) the schedule-resident
//! class sees a lower reject rate and lower p99 than cold captures.
//! Results land in `BENCH_loadgen.json` (`--ramp-json PATH` overrides).
//!
//! ```text
//! cargo run -p smache-bench --bin loadgen --release
//! cargo run -p smache-bench --bin loadgen --release -- --ramp
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use smache_bench::json::Json;
use smache_bench::report::Table;
use smache_serve::{start, Client, Listen, ServeConfig};
use smache_sim::run_batch;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&format!("{flag}=")).map(str::to_string))
        })
}

/// The benchmark workload: expensive enough that a miss visibly
/// simulates, small enough that a full sweep stays in seconds.
const GRID: &str = "32x32";
const INSTANCES: u64 = 2;
/// The hot request every "repeat" re-issues.
const HOT_SEED: u64 = 42;

fn request_line(id: usize, seed: u64) -> Json {
    Json::obj(vec![
        ("id", Json::str(format!("r{id}"))),
        ("cmd", Json::str("simulate")),
        ("spec", Json::obj(vec![("grid", Json::str(GRID))])),
        ("seed", Json::Int(seed as i64)),
        ("instances", Json::Int(INSTANCES as i64)),
    ])
}

/// The seed for request `j` of client `client` at `repeat_pct`:
/// repeats hit [`HOT_SEED`], uniques never collide across clients.
fn seed_for(repeat_pct: u32, client: usize, j: usize) -> u64 {
    let is_repeat = match repeat_pct {
        0 => false,
        100 => true,
        _ => j.is_multiple_of(2),
    };
    if is_repeat {
        HOT_SEED
    } else {
        1_000 + (client as u64) * 10_000 + j as u64
    }
}

struct LoopResult {
    wall_s: f64,
    latencies_us: Vec<u64>,
    hits: u64,
    oks: u64,
    rejected: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn closed_loop(addr: &str, clients: usize, per_client: usize, repeat_pct: u32) -> LoopResult {
    let started = Instant::now();
    let shards = run_batch((0..clients).collect(), clients, |client| {
        let mut conn = Client::connect(addr).expect("connect");
        let mut latencies = Vec::with_capacity(per_client);
        let (mut hits, mut oks, mut rejected) = (0u64, 0u64, 0u64);
        for j in 0..per_client {
            let req = request_line(client * per_client + j, seed_for(repeat_pct, client, j));
            let t0 = Instant::now();
            let resp = conn.call(&req).expect("call");
            latencies.push(t0.elapsed().as_micros() as u64);
            match resp.get("status").and_then(Json::as_str) {
                Some("ok") => {
                    oks += 1;
                    if resp.get("cached").and_then(Json::as_bool) == Some(true) {
                        hits += 1;
                    }
                }
                Some("rejected") => rejected += 1,
                other => panic!("unexpected response status {other:?}"),
            }
        }
        (latencies, hits, oks, rejected)
    });
    let wall_s = started.elapsed().as_secs_f64();
    let mut out = LoopResult {
        wall_s,
        latencies_us: Vec::new(),
        hits: 0,
        oks: 0,
        rejected: 0,
    };
    for (lat, hits, oks, rejected) in shards {
        out.latencies_us.extend(lat);
        out.hits += hits;
        out.oks += oks;
        out.rejected += rejected;
    }
    out.latencies_us.sort_unstable();
    out
}

fn open_loop(addr: &str, total: usize, repeat_pct: u32) -> LoopResult {
    // Client id 999 keeps open-loop unique seeds disjoint from the
    // closed-loop pass's, so 0%-repeat traffic really misses.
    let mut conn = Client::connect(addr).expect("connect");
    let started = Instant::now();
    for j in 0..total {
        conn.send(&request_line(j, seed_for(repeat_pct, 999, j)))
            .expect("send");
    }
    let (mut hits, mut oks, mut rejected) = (0u64, 0u64, 0u64);
    for _ in 0..total {
        let resp = conn.recv().expect("recv");
        match resp.get("status").and_then(Json::as_str) {
            Some("ok") => {
                oks += 1;
                if resp.get("cached").and_then(Json::as_bool) == Some(true) {
                    hits += 1;
                }
            }
            _ => rejected += 1,
        }
    }
    LoopResult {
        wall_s: started.elapsed().as_secs_f64(),
        latencies_us: Vec::new(),
        hits,
        oks,
        rejected,
    }
}

// ---------------------------------------------------------------------------
// Concurrency ramp (--ramp)
// ---------------------------------------------------------------------------

/// Open-loop concurrency rungs; `--max-clients` truncates the list.
const RAMP_RUNGS: &[usize] = &[16, 64, 256, 1024, 2048, 4096];
/// A rung this size or larger counts as "overload" for the
/// class-separation assertions.
const OVERLOAD_RUNG: usize = 1024;
/// The hot spec's warm-up seed; also reused for the byte-identity probe.
const WARM_SEED: u64 = 31_337;

/// Fresh seeds for ramp traffic: globally unique, so the *result* cache
/// never hits and replay-class wins come from the schedule cache alone.
static NEXT_SEED: AtomicU64 = AtomicU64::new(10_000_000);
/// Fresh `(grid, instances)` combos for capture-class traffic: every
/// request carries a schedule key the server has never seen.
static NEXT_COMBO: AtomicU64 = AtomicU64::new(0);

fn replay_request(id: &str) -> Json {
    Json::obj(vec![
        ("id", Json::str(id)),
        ("cmd", Json::str("simulate")),
        ("spec", Json::obj(vec![("grid", Json::str(GRID))])),
        (
            "seed",
            Json::Int(NEXT_SEED.fetch_add(1, Ordering::Relaxed) as i64),
        ),
        ("instances", Json::Int(INSTANCES as i64)),
    ])
}

fn capture_request(id: &str) -> Json {
    let n = NEXT_COMBO.fetch_add(1, Ordering::Relaxed);
    let w = 8 + (n % 57);
    let h = 8 + ((n / 57) % 57);
    let instances = 1 + n / (57 * 57);
    Json::obj(vec![
        ("id", Json::str(id)),
        ("cmd", Json::str("simulate")),
        (
            "spec",
            Json::obj(vec![("grid", Json::str(format!("{w}x{h}")))]),
        ),
        (
            "seed",
            Json::Int(NEXT_SEED.fetch_add(1, Ordering::Relaxed) as i64),
        ),
        ("instances", Json::Int(instances as i64)),
    ])
}

/// Connect with retries: at a 2048-client rung the listener backlog
/// overflows transiently while the reactor drains its accept loop.
fn connect_retry(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!("connect {addr}: {e}");
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

#[derive(Default)]
struct ClassStats {
    sent: u64,
    oks: u64,
    rejected: u64,
    /// Latency of *ok* responses only; rejects return fast and would
    /// flatter the overloaded class.
    latencies_us: Vec<u64>,
}

impl ClassStats {
    fn merge(&mut self, other: ClassStats) {
        self.sent += other.sent;
        self.oks += other.oks;
        self.rejected += other.rejected;
        self.latencies_us.extend(other.latencies_us);
    }

    fn reject_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.rejected as f64 / self.sent as f64
        }
    }

    fn json(&self) -> Json {
        Json::obj(vec![
            ("sent", Json::Int(self.sent as i64)),
            ("ok", Json::Int(self.oks as i64)),
            ("rejected", Json::Int(self.rejected as i64)),
            ("reject_rate", Json::Num(self.reject_rate())),
            (
                "p50_us",
                Json::Int(percentile(&self.latencies_us, 0.50) as i64),
            ),
            (
                "p95_us",
                Json::Int(percentile(&self.latencies_us, 0.95) as i64),
            ),
            (
                "p99_us",
                Json::Int(percentile(&self.latencies_us, 0.99) as i64),
            ),
        ])
    }
}

/// One open-loop ramp client: pipeline every request, then drain every
/// response, correlating latency by request id (responses interleave).
fn ramp_client(addr: &str, client: usize, per_client: usize, replay: bool) -> ClassStats {
    let mut conn = connect_retry(addr);
    let mut sent_at: HashMap<String, Instant> = HashMap::with_capacity(per_client);
    for j in 0..per_client {
        let id = format!("c{client}r{j}");
        let req = if replay {
            replay_request(&id)
        } else {
            capture_request(&id)
        };
        sent_at.insert(id, Instant::now());
        conn.send(&req).expect("send");
    }
    let mut stats = ClassStats {
        sent: per_client as u64,
        ..ClassStats::default()
    };
    for _ in 0..per_client {
        let resp = conn.recv().expect("recv");
        let latency = resp
            .get("id")
            .and_then(Json::as_str)
            .and_then(|id| sent_at.get(id))
            .map(|t0| t0.elapsed().as_micros() as u64);
        match resp.get("status").and_then(Json::as_str) {
            Some("ok") => {
                stats.oks += 1;
                if let Some(us) = latency {
                    stats.latencies_us.push(us);
                }
            }
            Some("rejected") => stats.rejected += 1,
            other => panic!("unexpected response status {other:?}"),
        }
    }
    stats
}

fn vm_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Raw wire-level call over the Unix socket: returns the response line
/// verbatim (the typed [`Client`] would re-serialise and mask byte-level
/// differences).
fn raw_call(path: &std::path::Path, line: &str) -> String {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::os::unix::net::UnixStream::connect(path).expect("raw connect");
    stream.write_all(line.as_bytes()).expect("raw write");
    stream.write_all(b"\n").expect("raw write");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("raw read");
    resp
}

fn run_ramp(max_clients: usize, workers: usize, path: &str) {
    // One server for the whole ramp: the schedule cache stays warm
    // across rungs, which is exactly what the replay class relies on.
    // The queue is deliberately tiny relative to the top rungs so the
    // admission policy — not the OS — decides who gets rejected.
    let queue_cap = 64;
    let max_conns = 8192;
    let sock =
        std::env::temp_dir().join(format!("smache-loadgen-ramp-{}.sock", std::process::id()));
    let handle = start(ServeConfig {
        listen: Listen::Unix(sock.clone()),
        workers,
        queue_cap,
        cache_bytes: 64 << 20,
        schedule_cache_bytes: 32 << 20,
        max_conns,
        adaptive: true,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    // Warm-up: capture the hot spec's schedule (first call) and park one
    // result-cache entry (same seed) for the byte-identity probe below.
    let mut warm = Client::connect(&addr).expect("connect");
    for tag in ["warm0", "warm1"] {
        let req = Json::obj(vec![
            ("id", Json::str(tag)),
            ("cmd", Json::str("simulate")),
            ("spec", Json::obj(vec![("grid", Json::str(GRID))])),
            ("seed", Json::Int(WARM_SEED as i64)),
            ("instances", Json::Int(INSTANCES as i64)),
        ]);
        let resp = warm.call(&req).expect("warm call");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "warm-up failed: {}",
            resp.compact()
        );
    }
    drop(warm);

    println!(
        "== serve ramp: hot {GRID} x{INSTANCES} vs cold captures, {workers} workers, queue {queue_cap}, adaptive on ==\n"
    );

    let mut table = Table::new(vec![
        "Clients", "Class", "sent", "ok", "rejected", "rej rate", "p50 us", "p95 us", "p99 us",
    ]);
    let mut rungs_json = Vec::new();

    for &clients in RAMP_RUNGS.iter().filter(|&&c| c <= max_clients) {
        // Fewer requests per client at high rungs keeps each rung's total
        // bounded; the point up there is concurrent connections, not volume.
        let per_client = (2048 / clients).clamp(2, 32);
        let started = Instant::now();
        let shards = run_batch((0..clients).collect(), clients, |client| {
            let replay = client % 2 == 0;
            (replay, ramp_client(&addr, client, per_client, replay))
        });
        let wall_s = started.elapsed().as_secs_f64();
        let (mut replay, mut capture) = (ClassStats::default(), ClassStats::default());
        for (is_replay, stats) in shards {
            if is_replay {
                replay.merge(stats);
            } else {
                capture.merge(stats);
            }
        }
        replay.latencies_us.sort_unstable();
        capture.latencies_us.sort_unstable();
        let rss_kb = vm_rss_kb();

        for (class, s) in [("replay", &replay), ("capture", &capture)] {
            table.row(vec![
                clients.to_string(),
                class.to_string(),
                s.sent.to_string(),
                s.oks.to_string(),
                s.rejected.to_string(),
                format!("{:.2}", s.reject_rate()),
                percentile(&s.latencies_us, 0.50).to_string(),
                percentile(&s.latencies_us, 0.95).to_string(),
                percentile(&s.latencies_us, 0.99).to_string(),
            ]);
        }
        rungs_json.push(Json::obj(vec![
            ("clients", Json::Int(clients as i64)),
            ("requests_per_client", Json::Int(per_client as i64)),
            ("wall_s", Json::Num(wall_s)),
            ("vm_rss_kb", Json::Int(rss_kb as i64)),
            ("replay", replay.json()),
            ("capture", capture.json()),
        ]));

        // RSS must stay bounded: thousands of connections cost fds and
        // pooled buffers, not gigabytes.
        assert!(
            rss_kb < 2 << 20,
            "RSS exceeded 2 GiB at {clients} clients: {rss_kb} kB"
        );

        if clients >= OVERLOAD_RUNG {
            assert!(
                capture.rejected > 0,
                "{clients} pipelining clients over a {queue_cap}-slot queue must overload"
            );
            assert!(
                replay.reject_rate() < capture.reject_rate(),
                "schedule-resident class must see a lower reject rate at {clients} clients: \
                 replay {:.3} vs capture {:.3}",
                replay.reject_rate(),
                capture.reject_rate()
            );
            if replay.latencies_us.len() >= 5 && capture.latencies_us.len() >= 5 {
                let (rp99, cp99) = (
                    percentile(&replay.latencies_us, 0.99),
                    percentile(&capture.latencies_us, 0.99),
                );
                assert!(
                    rp99 < cp99,
                    "schedule-resident class must see a lower p99 at {clients} clients: \
                     replay {rp99}us vs capture {cp99}us"
                );
            }
        }
    }

    println!("{table}");

    // Byte-identity probe: two raw wire-level calls of the warmed hot
    // request must produce byte-identical response lines.
    let probe = Json::obj(vec![
        ("id", Json::str("probe")),
        ("cmd", Json::str("simulate")),
        ("spec", Json::obj(vec![("grid", Json::str(GRID))])),
        ("seed", Json::Int(WARM_SEED as i64)),
        ("instances", Json::Int(INSTANCES as i64)),
    ])
    .compact();
    let first = raw_call(&sock, &probe);
    let second = raw_call(&sock, &probe);
    assert_eq!(
        first, second,
        "cached responses must be byte-identical across connections"
    );
    assert!(
        first.contains("\"status\":\"ok\""),
        "byte-identity probe must succeed, got: {first}"
    );
    println!(
        "byte-identity probe: two raw cached responses identical ({} bytes)",
        first.len()
    );

    let metrics = handle.metrics();
    let doc = Json::obj(vec![
        ("bench", Json::str("serve_ramp")),
        ("grid", Json::str(GRID)),
        ("instances", Json::Int(INSTANCES as i64)),
        ("workers", Json::Int(workers as i64)),
        ("queue_cap", Json::Int(queue_cap as i64)),
        ("max_conns", Json::Int(max_conns as i64)),
        ("adaptive", Json::Bool(true)),
        ("max_clients", Json::Int(max_clients as i64)),
        ("byte_identical_repeat", Json::Bool(true)),
        (
            "admitted_replay",
            Json::Int(metrics.counter("serve.admission.replay") as i64),
        ),
        (
            "admitted_capture",
            Json::Int(metrics.counter("serve.admission.capture") as i64),
        ),
        (
            "conns_opened",
            Json::Int(metrics.counter("serve.conn.opened") as i64),
        ),
        ("rungs", Json::Arr(rungs_json)),
    ]);
    handle.shutdown();
    std::fs::write(path, doc.pretty()).expect("write json");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--ramp") {
        let max_clients: usize = arg_value(&args, "--max-clients")
            .map(|v| v.parse().expect("--max-clients wants a number"))
            .unwrap_or(2048);
        let workers: usize = arg_value(&args, "--workers")
            .map(|v| v.parse().expect("--workers wants a number"))
            .unwrap_or(2);
        let path = arg_value(&args, "--ramp-json").unwrap_or_else(|| "BENCH_loadgen.json".into());
        run_ramp(max_clients, workers, &path);
        return;
    }

    let clients: usize = arg_value(&args, "--clients")
        .map(|v| v.parse().expect("--clients wants a number"))
        .unwrap_or(4);
    let per_client: usize = arg_value(&args, "--requests")
        .map(|v| v.parse().expect("--requests wants a number"))
        .unwrap_or(16);
    let workers: usize = arg_value(&args, "--workers")
        .map(|v| v.parse().expect("--workers wants a number"))
        .unwrap_or(4);
    let path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_serve.json".into());

    let total = clients * per_client;
    println!(
        "== serve loadgen: {GRID} x{INSTANCES}, {clients} clients x {per_client} requests, {workers} workers ==\n"
    );

    let mut table = Table::new(vec![
        "Repeat", "Mode", "req/s", "p50 us", "p95 us", "p99 us", "hit rate", "rejected",
    ]);
    let mut rows = Vec::new();
    let mut closed_rps = std::collections::BTreeMap::new();

    for repeat_pct in [0u32, 50, 100] {
        // A fresh server per ratio: cold cache, zeroed metrics. The
        // open-loop pass reuses the closed-loop pass's warm cache, so it
        // measures steady-state repeat traffic.
        let sock = std::env::temp_dir().join(format!(
            "smache-loadgen-{}-{repeat_pct}.sock",
            std::process::id()
        ));
        let handle = start(ServeConfig {
            listen: Listen::Unix(sock.clone()),
            workers,
            queue_cap: clients * 2 + total,
            cache_bytes: 64 << 20,
            // Schedule cache off: this sweep isolates the result cache.
            // (Enabled, it would replay every unique-seed request of the
            // same spec and flatten the very ratio being measured.)
            schedule_cache_bytes: 0,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let addr = handle.addr().to_string();

        let closed = closed_loop(&addr, clients, per_client, repeat_pct);
        let open = open_loop(&addr, total, repeat_pct);
        handle.shutdown();

        for (mode, r) in [("closed", &closed), ("open", &open)] {
            let rps = r.oks as f64 / r.wall_s;
            let hit_rate = if r.oks == 0 {
                0.0
            } else {
                r.hits as f64 / r.oks as f64
            };
            let (p50, p95, p99) = (
                percentile(&r.latencies_us, 0.50),
                percentile(&r.latencies_us, 0.95),
                percentile(&r.latencies_us, 0.99),
            );
            let cell = |v: u64| {
                if r.latencies_us.is_empty() {
                    "-".into()
                } else {
                    v.to_string()
                }
            };
            table.row(vec![
                format!("{repeat_pct}%"),
                mode.to_string(),
                format!("{rps:.0}"),
                cell(p50),
                cell(p95),
                cell(p99),
                format!("{:.2}", hit_rate),
                r.rejected.to_string(),
            ]);
            rows.push(Json::obj(vec![
                ("repeat_pct", Json::Int(repeat_pct as i64)),
                ("mode", Json::str(mode)),
                ("requests", Json::Int(r.oks as i64)),
                ("throughput_rps", Json::Num(rps)),
                ("p50_us", Json::Int(p50 as i64)),
                ("p95_us", Json::Int(p95 as i64)),
                ("p99_us", Json::Int(p99 as i64)),
                ("hit_rate", Json::Num(hit_rate)),
                ("rejected", Json::Int(r.rejected as i64)),
            ]));
            if mode == "closed" {
                closed_rps.insert(repeat_pct, rps);
            }
        }
    }

    println!("{table}");

    let speedup = closed_rps[&100] / closed_rps[&0];
    println!("cache speedup (100% vs 0% repeats, closed loop): {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "content-addressed cache must yield >= 5x throughput on repeat traffic, got {speedup:.1}x"
    );

    // Second-level cache: the same all-unique workload (same spec, fresh
    // seed every request — the result cache never hits) with the schedule
    // cache enabled. The first request captures its control schedule;
    // every later request replays it instead of simulating.
    let sock =
        std::env::temp_dir().join(format!("smache-loadgen-{}-sched.sock", std::process::id()));
    let handle = start(ServeConfig {
        listen: Listen::Unix(sock.clone()),
        workers,
        queue_cap: clients * 2 + total,
        cache_bytes: 64 << 20,
        schedule_cache_bytes: 4 << 20,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let sched = closed_loop(handle.addr(), clients, per_client, 0);
    handle.shutdown();
    let sched_rps = sched.oks as f64 / sched.wall_s;
    let sched_speedup = sched_rps / closed_rps[&0];
    println!(
        "schedule-cache speedup (0% repeats, replay vs full sim, closed loop): {sched_speedup:.1}x"
    );
    assert!(
        sched.hits == 0,
        "unique-seed traffic must never hit the result cache, got {} hits",
        sched.hits
    );
    assert!(
        sched_speedup >= 2.0,
        "schedule replay must yield >= 2x throughput on same-spec unique-seed traffic, got {sched_speedup:.1}x"
    );
    rows.push(Json::obj(vec![
        ("repeat_pct", Json::Int(0)),
        ("mode", Json::str("closed+schedule_cache")),
        ("requests", Json::Int(sched.oks as i64)),
        ("throughput_rps", Json::Num(sched_rps)),
        (
            "p50_us",
            Json::Int(percentile(&sched.latencies_us, 0.50) as i64),
        ),
        (
            "p95_us",
            Json::Int(percentile(&sched.latencies_us, 0.95) as i64),
        ),
        (
            "p99_us",
            Json::Int(percentile(&sched.latencies_us, 0.99) as i64),
        ),
        ("hit_rate", Json::Num(0.0)),
        ("rejected", Json::Int(sched.rejected as i64)),
    ]));

    let doc = Json::obj(vec![
        ("bench", Json::str("serve_loadgen")),
        ("grid", Json::str(GRID)),
        ("instances", Json::Int(INSTANCES as i64)),
        ("clients", Json::Int(clients as i64)),
        ("requests_per_client", Json::Int(per_client as i64)),
        ("workers", Json::Int(workers as i64)),
        ("cache_speedup_closed", Json::Num(speedup)),
        ("schedule_speedup_closed", Json::Num(sched_speedup)),
        ("rows", Json::Arr(rows)),
    ]);
    std::fs::write(&path, doc.pretty()).expect("write json");
    println!("wrote {path}");
}
