//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", c, width = widths[i])?;
            }
            writeln!(f)
        };
        render(&self.headers, f)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(row, f)?;
        }
        Ok(())
    }
}

/// Renders a horizontal ASCII bar of `value` against `max` (Fig. 2's
/// normalised chart, one bar per line).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value < 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "metric"]);
        t.row(vec!["x", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("metric"));
        assert!(lines[1].starts_with('-'));
        // All rows equal length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        assert_eq!(bar(0.5, 1.0, 10), "#####");
        assert_eq!(bar(0.0, 1.0, 10), "");
        assert_eq!(bar(2.0, 1.0, 4), "####", "clamped at width");
        assert_eq!(bar(1.0, 0.0, 4), "");
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
