//! The shared batch flag group for the bench binaries.
//!
//! `fig2`, `chaos` and `replay` all drive
//! [`SmacheSystem::run_batch`](smache::SmacheSystem::run_batch) sweeps, so
//! they parse the same flags the CLI's `simulate` command takes, with the
//! same spellings and defaults:
//!
//! * `--jobs N` — worker threads sharding the batch.
//! * `--replay auto|on|off` — schedule-replay mode ([`ReplayMode`]).
//! * `--store DIR` — persistent schedule store to warm-start from.
//! * `--store-mb MB` — store disk budget (`0` = unbounded).
//! * `--lane-block N` — lanes batched per replay pass
//!   ([`DEFAULT_LANE_BLOCK`] when absent).
//!
//! Both `--flag value` and `--flag=value` spellings are accepted,
//! matching every other bench flag.

use smache::system::store::ScheduleStore;
use smache::system::{BatchOptions, ReplayMode, DEFAULT_LANE_BLOCK};

/// `--flag value` (or `--flag=value`) lookup over raw args.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&format!("{flag}=")).map(str::to_string))
        })
}

/// `--timesteps T`/`--channels C` as a pipeline geometry, mirroring the
/// CLI's spec knobs: `Some((depth, channels))` when either departs from 1
/// (the workload wants the temporal pipeline), `None` for plain
/// single-step runs.
pub fn pipeline_args(args: &[String]) -> Option<(usize, usize)> {
    let depth: usize = arg_value(args, "--timesteps")
        .map(|v| v.parse().expect("--timesteps wants a number >= 1"))
        .unwrap_or(1);
    let channels: usize = arg_value(args, "--channels")
        .map(|v| v.parse().expect("--channels wants a number >= 1"))
        .unwrap_or(1);
    assert!(
        depth >= 1 && channels >= 1,
        "--timesteps/--channels want numbers >= 1"
    );
    (depth > 1 || channels > 1).then_some((depth, channels))
}

/// The parsed batch flag group. Owns the opened [`ScheduleStore`] (if
/// `--store` was given) so [`options`](Self::options) can lend it to a
/// [`BatchOptions`] per sweep.
pub struct BatchFlags {
    /// Worker threads (`--jobs`).
    pub jobs: usize,
    /// Replay mode (`--replay`, default `auto`).
    pub replay: ReplayMode,
    /// Persistent schedule store (`--store DIR`, budgeted by `--store-mb`).
    pub store: Option<ScheduleStore>,
    /// Lanes per replay block (`--lane-block`).
    pub lane_block: usize,
}

impl BatchFlags {
    /// Parses the group out of raw args. `default_jobs` differs per
    /// binary (`fig2` defaults to 1, `replay` to 4), everything else is
    /// uniform.
    pub fn parse(args: &[String], default_jobs: usize) -> BatchFlags {
        let jobs = arg_value(args, "--jobs")
            .map(|v| v.parse().expect("--jobs wants a number"))
            .unwrap_or(default_jobs);
        let replay = arg_value(args, "--replay")
            .map(|v| ReplayMode::from_label(&v).expect("--replay wants auto|on|off"))
            .unwrap_or(ReplayMode::Auto);
        let store_mb: u64 = arg_value(args, "--store-mb")
            .map(|v| v.parse().expect("--store-mb wants a number"))
            .unwrap_or(0);
        let store = arg_value(args, "--store").map(|dir| {
            ScheduleStore::open(std::path::Path::new(&dir), store_mb << 20).expect("open --store")
        });
        let lane_block = arg_value(args, "--lane-block")
            .map(|v| v.parse().expect("--lane-block wants a number"))
            .unwrap_or(DEFAULT_LANE_BLOCK);
        assert!(lane_block >= 1, "--lane-block wants at least 1");
        BatchFlags {
            jobs,
            replay,
            store,
            lane_block,
        }
    }

    /// One sweep's [`BatchOptions`], borrowing the store mutably for its
    /// duration.
    pub fn options(&mut self) -> BatchOptions<'_> {
        let options = BatchOptions::new()
            .threads(self.jobs)
            .replay(self.replay)
            .lane_block(self.lane_block);
        match self.store.as_mut() {
            Some(store) => options.store(store),
            None => options,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_mirror_the_cli() {
        let flags = BatchFlags::parse(&[], 4);
        assert_eq!(flags.jobs, 4);
        assert_eq!(flags.replay, ReplayMode::Auto);
        assert!(flags.store.is_none());
        assert_eq!(flags.lane_block, DEFAULT_LANE_BLOCK);
    }

    #[test]
    fn both_flag_spellings_parse() {
        let flags = BatchFlags::parse(&strs(&["--jobs", "2", "--replay=off"]), 1);
        assert_eq!(flags.jobs, 2);
        assert_eq!(flags.replay, ReplayMode::Off);
        let flags = BatchFlags::parse(&strs(&["--lane-block=3", "--replay", "on"]), 1);
        assert_eq!(flags.lane_block, 3);
        assert_eq!(flags.replay, ReplayMode::On);
    }

    #[test]
    fn a_store_dir_opens_the_store_with_its_budget() {
        let dir = std::env::temp_dir().join(format!("smache-flags-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut flags = BatchFlags::parse(
            &strs(&["--store", dir.to_str().unwrap(), "--store-mb", "1"]),
            1,
        );
        let store = flags.store.as_ref().expect("store opened");
        assert_eq!(store.dir(), dir);
        let _ = flags.options(); // borrows the store without consuming it
        let _ = flags.options();
        std::fs::remove_dir_all(&dir).ok();
    }
}
