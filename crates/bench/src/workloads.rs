//! Workload generators shared by the experiment binaries and benches.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smache::arch::kernel::AverageKernel;
use smache::config::BufferPlan;
use smache::system::batch::{BatchJob, KernelFactory};
use smache::system::smache_system::{SmacheSystem, SystemConfig};
use smache::{HybridMode, SmacheBuilder};
use smache_baseline::{BaselineConfig, BaselineSystem};
use smache_stencil::{BoundarySpec, GridSpec, StencilShape};

/// The paper's validation problem at a chosen grid size.
#[derive(Debug, Clone)]
pub struct PaperWorkload {
    /// Grid (height × width).
    pub grid: GridSpec,
    /// 4-point stencil.
    pub shape: StencilShape,
    /// Circular rows, open columns.
    pub bounds: BoundarySpec,
    /// Work-instances to run.
    pub instances: u64,
}

/// Builds the paper's workload: `h×w` grid, 4-point stencil, circular
/// top/bottom + open left/right boundaries.
pub fn paper_problem(h: usize, w: usize, instances: u64) -> PaperWorkload {
    PaperWorkload {
        grid: GridSpec::d2(h, w).expect("positive dims"),
        shape: StencilShape::four_point_2d(),
        bounds: BoundarySpec::paper_case(),
        instances,
    }
}

impl PaperWorkload {
    /// Deterministic pseudo-random input grid.
    pub fn input(&self, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..self.grid.len())
            .map(|_| rng.gen_range(0..1u64 << 20))
            .collect()
    }

    /// A ramp input (the kind used in the paper-regime assertions).
    pub fn ramp_input(&self) -> Vec<u64> {
        (0..self.grid.len() as u64).collect()
    }

    /// Instantiates the Smache system for this workload.
    pub fn smache(&self, hybrid: HybridMode) -> SmacheSystem {
        SmacheBuilder::new(self.grid.clone())
            .shape(self.shape.clone())
            .boundaries(self.bounds.clone())
            .hybrid(hybrid)
            .build()
            .expect("valid paper workload")
    }

    /// Instantiates the Smache system with custom system tunables.
    pub fn smache_with(&self, hybrid: HybridMode, config: SystemConfig) -> SmacheSystem {
        SmacheBuilder::new(self.grid.clone())
            .shape(self.shape.clone())
            .boundaries(self.bounds.clone())
            .hybrid(hybrid)
            .system_config(config)
            .build()
            .expect("valid paper workload")
    }

    /// The buffer plan for this workload (the analysis the systems are
    /// instantiated from; used directly by batched runs).
    pub fn plan(&self, hybrid: HybridMode) -> BufferPlan {
        SmacheBuilder::new(self.grid.clone())
            .shape(self.shape.clone())
            .boundaries(self.bounds.clone())
            .hybrid(hybrid)
            .plan()
            .expect("valid paper workload")
    }

    /// One lane of a batched sweep: this workload with the seed's input
    /// grid, ready for [`SmacheSystem::run_batch`]. For whole sweeps
    /// prefer [`batch_jobs`](Self::batch_jobs), which shares one kernel
    /// factory across the lanes.
    pub fn batch_job(&self, seed: u64, hybrid: HybridMode) -> BatchJob {
        let factory: KernelFactory = Arc::new(|| Box::new(AverageKernel));
        BatchJob::new(self.plan(hybrid), factory, self.input(seed), self.instances)
    }

    /// One batch lane per seed, all sharing a single kernel factory so
    /// the batch runner recognises them as one spec without re-deriving
    /// the schedule key per lane.
    pub fn batch_jobs(
        &self,
        seeds: impl IntoIterator<Item = u64>,
        hybrid: HybridMode,
    ) -> Vec<BatchJob> {
        let factory: KernelFactory = Arc::new(|| Box::new(AverageKernel));
        seeds
            .into_iter()
            .map(|s| {
                BatchJob::new(
                    self.plan(hybrid),
                    Arc::clone(&factory),
                    self.input(s),
                    self.instances,
                )
            })
            .collect()
    }

    /// Instantiates a temporal pipeline over this workload (see
    /// `docs/PIPELINE.md`): `config.depth` chained stages, so one run of
    /// `instances / depth` passes advances the grid `instances` updates.
    pub fn pipeline(
        &self,
        hybrid: HybridMode,
        config: smache::PipelineConfig,
    ) -> smache::TemporalPipeline {
        smache::TemporalPipeline::new(self.plan(hybrid), Box::new(AverageKernel), config)
            .expect("valid paper workload")
    }

    /// Instantiates the baseline system for this workload.
    pub fn baseline(&self, config: BaselineConfig) -> BaselineSystem {
        BaselineSystem::new(
            self.grid.clone(),
            self.shape.clone(),
            self.bounds.clone(),
            Box::new(AverageKernel),
            config,
        )
        .expect("valid paper workload")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_problem_shape() {
        let w = paper_problem(11, 11, 100);
        assert_eq!(w.grid.len(), 121);
        assert_eq!(w.instances, 100);
        assert_eq!(w.input(1).len(), 121);
        assert_eq!(w.ramp_input()[120], 120);
    }

    #[test]
    fn input_is_deterministic_per_seed() {
        let w = paper_problem(8, 8, 1);
        assert_eq!(w.input(42), w.input(42));
        assert_ne!(w.input(42), w.input(43));
    }

    #[test]
    fn systems_instantiate_and_agree() {
        let w = paper_problem(8, 8, 1);
        let input = w.input(7);
        let mut s = w.smache(HybridMode::default());
        let mut b = w.baseline(BaselineConfig::default());
        let rs = s.run(&input, 2).unwrap();
        let rb = b.run(&input, 2).unwrap();
        assert_eq!(
            rs.output, rb.output,
            "both designs compute the same function"
        );
        assert!(rb.metrics.cycles > rs.metrics.cycles);
    }
}
