//! Parallel parameter-sweep driver.
//!
//! Each simulation point is independent, so sweeps shard across worker
//! threads via the simulator's batch layer ([`smache_sim::run_batch`]).
//! Results come back in input order regardless of completion order.

/// Maps `f` over `items` using up to `threads` worker threads, preserving
/// input order in the result.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    smache_sim::run_batch(items, threads, |item| f(&item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(items, 8, |&x| x * x);
        assert_eq!(out, (0..50).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_map((0..100).collect::<Vec<i32>>(), 4, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out.len(), 100);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_thread_and_empty_inputs() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x);
        assert_eq!(out, vec![1, 2, 3]);
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![7], 16, |&x| x * 2);
        assert_eq!(out, vec![14]);
    }
}
