//! Parallel parameter-sweep driver.
//!
//! Each simulation point is independent, so sweeps parallelise across
//! crossbeam scoped threads. Results come back in input order regardless
//! of completion order.

use parking_lot::Mutex;

/// Maps `f` over `items` using up to `threads` worker threads, preserving
/// input order in the result.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = Mutex::new(work);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| loop {
                let next = queue.lock().pop();
                let Some((idx, item)) = next else { break };
                let result = f(&item);
                slots.lock()[idx] = Some(result);
            });
        }
    })
    .expect("sweep worker panicked");

    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(items, 8, |&x| x * x);
        assert_eq!(out, (0..50).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_map((0..100).collect::<Vec<i32>>(), 4, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out.len(), 100);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_thread_and_empty_inputs() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x);
        assert_eq!(out, vec![1, 2, 3]);
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![7], 16, |&x| x * 2);
        assert_eq!(out, vec![14]);
    }
}
