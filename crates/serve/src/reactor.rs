//! The epoll reactor: one thread owning every socket.
//!
//! The reactor replaces the thread-per-connection design: a single
//! thread drives a level-triggered [`epoll::Poller`] over the listener,
//! a [`WakePipe`](epoll::WakePipe), and every client connection. Each
//! connection is a small state machine —
//!
//! ```text
//!   read bytes ─► rbuf ─► NDJSON line framing ─► dispatch ─► wbuf ─► write bytes
//! ```
//!
//! — with all I/O non-blocking. A connection costs two pooled buffers
//! and a map entry; a thousand idle clients cost no threads and no
//! syscalls until they become readable.
//!
//! Work splits by cost. The reactor itself handles everything cheap and
//! bounded: parsing, `stats`, `shutdown`, and result-cache hits (an
//! `Arc<str>` clone). CPU-bound runs are classified by their seed-blind
//! schedule key — resident in the schedule cache or store means the job
//! is a cheap **replay**, otherwise a cold **capture** — and pushed into
//! the two-class [`AdmissionQueue`](crate::pool::AdmissionQueue) under
//! the current (possibly adaptive) limit. Workers send finished lines
//! back through `Shared::completions` and the wake pipe; the reactor
//! appends them to the owning connection's write buffer and flushes.
//!
//! `EPOLLOUT` is armed only while a write buffer is non-empty (the
//! classic level-triggered discipline — a permanently-armed writable
//! interest would spin). The idle sweep closes connections with no
//! read/write progress and no job in flight for longer than the
//! configured timeout, after queueing a best-effort typed
//! `idle_timeout` notice — the slow-loris defence.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use epoll::{Event, Interest, Poller};
use smache::system::ReplayMode;

use crate::pool::JobClass;
use crate::protocol::{error_line, ok_line, rejected_line, Request, RequestBody, RunRequest};
use crate::server::{Completion, Job, Listener, Shared};

/// Token of the listening socket.
const LISTENER: u64 = 0;
/// Token of the wake pipe's read end.
const WAKE: u64 = 1;
/// First token handed to a client connection.
const FIRST_CONN: u64 = 2;

/// A request line (or trailing partial line) larger than this closes the
/// connection with an error — the framing bound that keeps one client
/// from ballooning the read buffer.
const MAX_LINE: usize = 1 << 20;

/// How long pending write buffers may keep the drained reactor alive.
const DRAIN_FLUSH_GRACE: Duration = Duration::from_secs(5);

enum Sock {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Sock {
    fn fd(&self) -> RawFd {
        match self {
            Sock::Unix(s) => s.as_raw_fd(),
            Sock::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Unix(s) => s.read(buf),
            Sock::Tcp(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Unix(s) => s.write(buf),
            Sock::Tcp(s) => s.write(buf),
        }
    }
}

/// Per-connection state machine.
struct Conn {
    sock: Sock,
    /// Unparsed request bytes (up to one partial line after framing).
    rbuf: Vec<u8>,
    /// Pending response bytes; `wpos..` is the unwritten tail.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Jobs admitted for this connection whose completion is pending.
    inflight: usize,
    /// Last moment any byte moved in either direction.
    last_activity: Instant,
    /// Whether `EPOLLOUT` is currently armed.
    armed_writable: bool,
    /// The peer closed its write side (EOF seen); close once quiet.
    read_closed: bool,
}

impl Conn {
    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// The reactor loop. Constructed on the starting thread (so bind/register
/// errors surface from [`start`](crate::server::start)), then moved onto
/// its own thread and [`run`](Reactor::run).
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: Listener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    max_conns: usize,
    idle: Option<Duration>,
}

impl Reactor {
    pub(crate) fn new(
        shared: Arc<Shared>,
        listener: Listener,
        max_conns: usize,
        idle: Option<Duration>,
    ) -> std::io::Result<Reactor> {
        let poller = Poller::new()?;
        let listener_fd = match &listener {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        };
        poller.add(listener_fd, LISTENER, Interest::READ)?;
        poller.add(shared.wake.read_fd(), WAKE, Interest::READ)?;
        Ok(Reactor {
            shared,
            poller,
            listener,
            conns: HashMap::new(),
            next_token: FIRST_CONN,
            max_conns,
            idle,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let draining = self.shared.shutdown.load(Ordering::SeqCst);
            if draining && self.shared.jobs_inflight.load(Ordering::SeqCst) == 0 {
                break;
            }
            let _ = self.poller.wait(&mut events, self.wait_timeout(draining));
            // `events` only borrows the poller, but the handlers need
            // `&mut self`; detach the batch first.
            let batch: Vec<Event> = std::mem::take(&mut events);
            for ev in batch {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKE => self.shared.wake.drain(),
                    token => self.conn_ready(token, ev),
                }
            }
            self.pump_completions();
            self.sweep_idle();
        }
        self.flush_and_close_all();
    }

    /// Poll timeout: short while draining (the exit condition is a
    /// counter, not an fd), half the idle timeout while sweeping, lazy
    /// otherwise (the wake pipe cuts through all of these).
    fn wait_timeout(&self, draining: bool) -> i32 {
        if draining {
            return 10;
        }
        match self.idle {
            Some(d) => (d.as_millis() / 2).clamp(5, 200) as i32,
            None => 200,
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Listener::Unix(l) => l.accept().map(|(s, _)| Sock::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Sock::Tcp(s)),
            };
            let mut sock = match accepted {
                Ok(sock) => sock,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient accept errors (ECONNABORTED and friends):
                // drop this one, keep listening.
                Err(_) => return,
            };
            // The accepted socket does not inherit the listener's
            // non-blocking flag.
            let nonblocking = match &sock {
                Sock::Unix(s) => s.set_nonblocking(true),
                Sock::Tcp(s) => s.set_nonblocking(true),
            };
            if nonblocking.is_err() {
                continue;
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                let line = rejected_line(None, "draining");
                let _ = sock.write(line.as_bytes());
                let _ = sock.write(b"\n");
                continue; // dropped: closing the socket says the rest
            }
            if self.conns.len() >= self.max_conns {
                self.shared.metrics.conn_max_rejected();
                let line = error_line(None, "connection limit reached (--max-conns)");
                let _ = sock.write(line.as_bytes());
                let _ = sock.write(b"\n");
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self.poller.add(sock.fd(), token, Interest::READ).is_err() {
                continue;
            }
            self.conns.insert(
                token,
                Conn {
                    sock,
                    rbuf: self.shared.bufpool.get(),
                    wbuf: self.shared.bufpool.get(),
                    wpos: 0,
                    inflight: 0,
                    last_activity: Instant::now(),
                    armed_writable: false,
                    read_closed: false,
                },
            );
            self.shared.metrics.conn_opened(self.conns.len() as u64);
        }
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        // Readable first: even on hangup the socket may hold final
        // request bytes (level-triggered EPOLLRDHUP arrives with them).
        if ev.readable || ev.closed {
            self.handle_readable(token);
        }
        if ev.writable && self.conns.contains_key(&token) {
            self.after_io(token);
        }
        // A pure error event with nothing left to do: drop the connection.
        if ev.closed && !ev.readable && !ev.writable {
            let finished = self
                .conns
                .get(&token)
                .is_some_and(|c| c.read_closed && !c.wants_write() && c.inflight == 0);
            if finished {
                self.close(token, false);
            }
        }
    }

    fn handle_readable(&mut self, token: u64) {
        let mut chunk = [0u8; 8192];
        let fatal = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                match conn.sock.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break false;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            }
        };
        if fatal {
            self.close(token, false);
            return;
        }
        self.process_buffered(token);
        self.after_io(token);
    }

    /// Frames and dispatches every complete line sitting in `rbuf`.
    fn process_buffered(&mut self, token: u64) {
        loop {
            enum Framed {
                Line(String),
                Oversize,
                Quiet,
            }
            let framed = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                match conn.rbuf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        let raw: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                        Framed::Line(String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned())
                    }
                    // No complete line. A partial line past the framing
                    // bound will never terminate usefully — refuse and
                    // hang up.
                    None if conn.rbuf.len() > MAX_LINE => Framed::Oversize,
                    None => Framed::Quiet,
                }
            };
            match framed {
                Framed::Line(line) => {
                    let trimmed = line.trim();
                    if !trimmed.is_empty() {
                        self.process_line(token, trimmed);
                    }
                }
                Framed::Oversize => {
                    self.shared.metrics.request();
                    self.shared.metrics.error();
                    self.respond(token, error_line(None, "request line too long"));
                    self.after_io(token);
                    self.close(token, false);
                    return;
                }
                Framed::Quiet => return,
            }
        }
    }

    fn process_line(&mut self, token: u64, line: &str) {
        self.shared.metrics.request();
        match Request::parse_line(line) {
            Err(msg) => {
                self.shared.metrics.error();
                self.respond(token, error_line(None, &msg));
            }
            Ok(Request { id, body }) => match body {
                RequestBody::Stats => {
                    self.shared.publish_queue_depth();
                    self.shared.publish_cache_state();
                    self.shared.publish_store_state();
                    self.shared.publish_adaptive_state();
                    self.shared.publish_bufpool_state();
                    let stats = self.shared.metrics.to_json().compact();
                    let id = id_text(&id);
                    self.respond(
                        token,
                        format!("{{\"id\":{id},\"status\":\"ok\",\"stats\":{stats}}}"),
                    );
                }
                RequestBody::Shutdown => {
                    let id = id_text(&id);
                    self.respond(
                        token,
                        format!("{{\"id\":{id},\"status\":\"ok\",\"draining\":true}}"),
                    );
                    self.shared.begin_shutdown();
                }
                RequestBody::Run(request) => self.handle_run(token, *request, id),
            },
        }
    }

    fn handle_run(&mut self, token: u64, request: RunRequest, id: Option<String>) {
        let key = request.cache_key();
        let hit = self.shared.cache.lock().expect("cache poisoned").get(key);
        self.shared.metrics.cache_lookup(hit.is_some());
        if let Some(text) = hit {
            // Serving a hit is an Arc clone plus a buffer append — cheap
            // enough to stay on the reactor thread.
            self.shared.metrics.ok(true);
            self.respond(token, ok_line(id.as_deref(), true, &text));
            return;
        }

        let deadline = request
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.shared.default_deadline);
        let class = self.classify(&request);
        let limit = self.shared.effective_limit();
        let job = Job {
            request,
            id,
            token,
            admitted: Instant::now(),
            deadline,
        };
        match self.shared.queue.try_push(job, class, limit) {
            Ok(()) => {
                self.shared.jobs_inflight.fetch_add(1, Ordering::SeqCst);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.inflight += 1;
                }
                self.shared.metrics.admitted(class == JobClass::Replay);
            }
            Err(refused) => {
                let reason = refused.reason();
                let job = refused.into_inner();
                self.shared.metrics.rejected(reason);
                self.respond(token, rejected_line(job.id.as_deref(), reason));
            }
        }
        self.shared.publish_queue_depth();
    }

    /// Classifies a run for admission: a request whose seed-blind
    /// schedule is already resident (in-memory cache or on-disk store) is
    /// a cheap replay; everything else is a cold capture. Pure probes —
    /// no recency refresh, no hit/miss counting — so classification never
    /// perturbs the caches it reads.
    fn classify(&self, request: &RunRequest) -> JobClass {
        if request.replay == ReplayMode::Off {
            return JobClass::Capture;
        }
        let Some(key) = request.schedule_key() else {
            return JobClass::Capture;
        };
        let in_cache = self
            .shared
            .schedules
            .lock()
            .expect("schedules poisoned")
            .contains(key);
        let resident = in_cache
            || self
                .shared
                .store
                .as_ref()
                .is_some_and(|store| store.lock().expect("store poisoned").contains(key));
        if resident {
            JobClass::Replay
        } else {
            JobClass::Capture
        }
    }

    /// Queues `line` on the connection's write buffer (flushed by the
    /// caller's `after_io`).
    fn respond(&mut self, token: u64, line: String) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.wbuf.extend_from_slice(line.as_bytes());
            conn.wbuf.push(b'\n');
        }
    }

    /// Post-I/O bookkeeping: flush what the socket will take, arm or
    /// disarm `EPOLLOUT` to match the remaining buffer, and close once a
    /// peer-closed connection has nothing left to say.
    fn after_io(&mut self, token: u64) {
        let poller = &self.poller;
        let (fatal, finished) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let fatal = loop {
                if conn.wpos >= conn.wbuf.len() {
                    break false;
                }
                match conn.sock.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => break false,
                    Ok(n) => {
                        conn.wpos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            };
            if conn.wpos == conn.wbuf.len() && conn.wpos > 0 {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
            let wants_write = conn.wants_write();
            if !fatal && wants_write != conn.armed_writable {
                let interest = if wants_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if poller.modify(conn.sock.fd(), token, interest).is_ok() {
                    conn.armed_writable = wants_write;
                }
            }
            (
                fatal,
                conn.read_closed && !wants_write && conn.inflight == 0,
            )
        };
        if fatal || finished {
            self.close(token, false);
        }
    }

    /// Delivers finished worker responses to their connections.
    fn pump_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut completions = self
                .shared
                .completions
                .lock()
                .expect("completions poisoned");
            std::mem::take(&mut *completions)
        };
        for Completion { token, line } in batch {
            self.shared.jobs_inflight.fetch_sub(1, Ordering::SeqCst);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.inflight -= 1;
                conn.wbuf.extend_from_slice(line.as_bytes());
                conn.wbuf.push(b'\n');
                self.after_io(token);
            }
            // Connection gone: the client vanished mid-job; the response
            // is dropped, matching the old writer behaviour.
        }
    }

    /// Closes connections with no progress and no job in flight past the
    /// idle timeout, after queueing a best-effort typed notice. Stalled
    /// writers (a full wbuf the peer never drains) age out the same way —
    /// `last_activity` only moves on actual byte progress.
    fn sweep_idle(&mut self) {
        let Some(idle) = self.idle else {
            return;
        };
        let now = Instant::now();
        let victims: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.inflight == 0 && now.duration_since(c.last_activity) >= idle)
            .map(|(&t, _)| t)
            .collect();
        for token in victims {
            self.shared.metrics.rejected("idle_timeout");
            if let Some(conn) = self.conns.get_mut(&token) {
                let line = rejected_line(None, "idle_timeout");
                // One direct write attempt; if the peer won't take it the
                // close itself is the signal.
                let _ = conn.sock.write(line.as_bytes());
                let _ = conn.sock.write(b"\n");
            }
            self.close(token, true);
        }
    }

    fn close(&mut self, token: u64, idle: bool) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.sock.fd());
            self.shared.bufpool.put(conn.rbuf);
            self.shared.bufpool.put(conn.wbuf);
            self.shared
                .metrics
                .conn_closed(self.conns.len() as u64, idle);
            // Dropping `conn.sock` closes the fd.
        }
    }

    /// Drain epilogue: give pending write buffers a bounded grace period
    /// to reach their clients, then close everything.
    fn flush_and_close_all(&mut self) {
        let deadline = Instant::now() + DRAIN_FLUSH_GRACE;
        let mut events: Vec<Event> = Vec::new();
        loop {
            let pending: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.wants_write())
                .map(|(&t, _)| t)
                .collect();
            if pending.is_empty() || Instant::now() >= deadline {
                break;
            }
            for token in pending {
                self.after_io(token);
            }
            if self.conns.values().any(Conn::wants_write) {
                let _ = self.poller.wait(&mut events, 50);
            }
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close(token, false);
        }
    }
}

fn id_text(id: &Option<String>) -> String {
    match id {
        Some(s) => smache_sim::Json::str(s.as_str()).compact(),
        None => "null".to_string(),
    }
}
