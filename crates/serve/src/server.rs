//! The long-running job server.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──► acceptor ──► connection threads ──┬─► cache hit ─► respond
//!                                                └─► BoundedQueue ─► workers ─► respond
//! ```
//!
//! One thread accepts connections (Unix socket or TCP); each connection
//! gets a reader thread that parses newline-delimited requests. Run
//! requests are first checked against the content-addressed
//! [`ResultCache`] — a hit responds immediately, byte-identical to the
//! run that populated it. Misses go through admission control: a
//! [`BoundedQueue`] that either accepts the job or refuses it *right
//! now* with a typed `overloaded` rejection. A fixed pool of worker
//! threads pulls jobs, checks each job's deadline at dequeue (expired →
//! typed `deadline` rejection), executes, populates the cache, and
//! writes the response to the owning connection.
//!
//! Behind the result cache sit two more levels for replay-eligible runs
//! (`simulate`, and `chaos` with a latency-only profile): an
//! in-memory [`ScheduleCache`] of captured control schedules, and — with
//! [`ServeConfig::store_dir`] set — a persistent
//! [`ScheduleStore`] on disk, so a restarted server replays previously
//! captured specs instead of recapturing them (see `docs/DEPLOYMENT.md`).
//!
//! `shutdown` begins a **graceful drain**: admission stops (`draining`
//! rejections), queued jobs still run to completion and their responses
//! are delivered, then workers and the acceptor exit.
//!
//! Responses may interleave across a connection in any order when
//! multiple requests are in flight — clients correlate by `id`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smache::system::store::ScheduleStore;
use smache::system::{ControlSchedule, ReplayMode};
use smache_sim::ScheduleCache;

use crate::cache::ResultCache;
use crate::metrics::ServerMetrics;
use crate::pool::BoundedQueue;
use crate::protocol::{error_line, ok_line, rejected_line, Request, RequestBody, RunRequest};

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A Unix-domain socket at this path (created on start, removed on
    /// clean shutdown).
    Unix(PathBuf),
    /// A TCP bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
}

impl Listen {
    /// Parses the textual address form shared with the client:
    /// `unix:<path>` or `tcp:<host>:<port>`.
    pub fn parse(addr: &str) -> Result<Listen, String> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if let Some(hostport) = addr.strip_prefix("tcp:") {
            Ok(Listen::Tcp(hostport.to_string()))
        } else {
            Err(format!("address `{addr}` must start with unix: or tcp:"))
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub listen: Listen,
    /// Worker threads executing runs.
    pub workers: usize,
    /// Admission-queue capacity (jobs waiting for a worker).
    pub queue_cap: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Schedule-cache byte budget (second-level cache of captured control
    /// schedules, keyed by spec + instances but **not** seed — a
    /// differing-seed `simulate` request that misses the result cache can
    /// still replay a cached schedule instead of re-simulating).
    pub schedule_cache_bytes: usize,
    /// Persistent schedule-store directory (third level). `Some(dir)`
    /// warm-starts the schedule cache from disk and writes every fresh
    /// capture back, so schedules survive restarts; `None` disables
    /// persistence (PR-5 behaviour).
    pub store_dir: Option<PathBuf>,
    /// Disk byte budget for the persistent store's LRU (`0` = unbounded).
    pub store_bytes: u64,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            queue_cap: 32,
            cache_bytes: 4 << 20,
            schedule_cache_bytes: 4 << 20,
            store_dir: None,
            store_bytes: 64 << 20,
            default_deadline_ms: None,
        }
    }
}

type ConnWriter = Arc<Mutex<Box<dyn Write + Send>>>;

struct Job {
    request: RunRequest,
    id: Option<String>,
    writer: ConnWriter,
    admitted: Instant,
    deadline: Option<Duration>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    cache: Mutex<ResultCache>,
    schedules: Mutex<ScheduleCache<ControlSchedule>>,
    store: Option<Mutex<ScheduleStore>>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    default_deadline: Option<Duration>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.drain();
    }

    fn publish_cache_state(&self) {
        let cache = self.cache.lock().expect("cache poisoned");
        let stats = cache.stats();
        self.metrics
            .cache_state(stats.evictions, cache.bytes() as u64, cache.len() as u64);
    }

    fn publish_store_state(&self) {
        if let Some(store) = &self.store {
            let store = store.lock().expect("store poisoned");
            self.metrics.store_state(store.bytes(), store.len() as u64);
        }
    }
}

enum Acceptor {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](ServerHandle::shutdown) or [`join`](ServerHandle::join).
pub struct ServerHandle {
    addr: String,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The server's reachable address in `unix:`/`tcp:` form (with the
    /// actual port when TCP bound port 0).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Direct metrics access (tests and the stats command share it).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Initiates the graceful drain, then [`join`](Self::join)s.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_inner();
    }

    /// Blocks until the server exits (a client's `shutdown` request, or a
    /// prior [`shutdown`](Self::shutdown) call, triggers the drain).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Starts the server and returns its handle.
///
/// Binds the listen address, spawns the acceptor and `workers` worker
/// threads, and returns immediately; the handle reports the actual bound
/// address.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let store = match &config.store_dir {
        Some(dir) => Some(Mutex::new(
            ScheduleStore::open(dir, config.store_bytes)
                .map_err(|e| std::io::Error::other(e.to_string()))?,
        )),
        None => None,
    };
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_cap),
        cache: Mutex::new(ResultCache::new(config.cache_bytes)),
        schedules: Mutex::new(ScheduleCache::new(config.schedule_cache_bytes)),
        store,
        metrics: ServerMetrics::new(),
        shutdown: AtomicBool::new(false),
        default_deadline: config.default_deadline_ms.map(Duration::from_millis),
    });
    shared.publish_store_state();

    let (acceptor, addr, unix_path) = match &config.listen {
        Listen::Unix(path) => {
            // A stale socket file from a killed process would fail the
            // bind; remove it (connect() distinguishes live servers).
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            (
                Acceptor::Unix(listener),
                format!("unix:{}", path.display()),
                Some(path.clone()),
            )
        }
        Listen::Tcp(hostport) => {
            let listener = TcpListener::bind(hostport)?;
            listener.set_nonblocking(true)?;
            let local = listener.local_addr()?;
            (Acceptor::Tcp(listener), format!("tcp:{local}"), None)
        }
    };

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let acceptor = std::thread::spawn(move || accept_loop(acceptor, &accept_shared));

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
        unix_path,
    })
}

type ConnPair = (Box<dyn std::io::Read + Send>, Box<dyn Write + Send>);

fn accept_loop(acceptor: Acceptor, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // The listener is nonblocking (so this loop can notice shutdown);
        // accepted connections are flipped back to blocking I/O.
        let accepted: std::io::Result<ConnPair> = match &acceptor {
            Acceptor::Unix(l) => l.accept().and_then(|(s, _)| {
                s.set_nonblocking(false)?;
                let reader = s.try_clone()?;
                Ok((Box::new(reader) as _, Box::new(s) as _))
            }),
            Acceptor::Tcp(l) => l.accept().and_then(|(s, _)| {
                s.set_nonblocking(false)?;
                let reader = s.try_clone()?;
                Ok((Box::new(reader) as _, Box::new(s) as _))
            }),
        };
        match accepted {
            Ok((reader, writer)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    serve_connection(reader, Arc::new(Mutex::new(writer)), &shared)
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn id_text(id: &Option<String>) -> String {
    match id {
        Some(s) => smache_sim::Json::str(s.as_str()).compact(),
        None => "null".to_string(),
    }
}

fn write_line(writer: &ConnWriter, line: &str) {
    let mut w = writer.lock().expect("writer poisoned");
    // A vanished client is not a server error; drop the response.
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

fn serve_connection(
    reader: Box<dyn std::io::Read + Send>,
    writer: ConnWriter,
    shared: &Arc<Shared>,
) {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        shared.metrics.request();
        match Request::parse_line(trimmed) {
            Err(msg) => {
                shared.metrics.error();
                write_line(&writer, &error_line(None, &msg));
            }
            Ok(Request { id, body }) => match body {
                RequestBody::Stats => {
                    shared.metrics.queue_depth(shared.queue.depth() as u64);
                    shared.publish_cache_state();
                    let stats = shared.metrics.to_json().compact();
                    write_line(
                        &writer,
                        &format!(
                            "{{\"id\":{},\"status\":\"ok\",\"stats\":{stats}}}",
                            id_text(&id)
                        ),
                    );
                }
                RequestBody::Shutdown => {
                    write_line(
                        &writer,
                        &format!(
                            "{{\"id\":{},\"status\":\"ok\",\"draining\":true}}",
                            id_text(&id)
                        ),
                    );
                    shared.begin_shutdown();
                }
                RequestBody::Run(request) => {
                    handle_run(*request, id, &writer, shared);
                }
            },
        }
    }
}

fn handle_run(request: RunRequest, id: Option<String>, writer: &ConnWriter, shared: &Arc<Shared>) {
    let key = request.cache_key();
    let hit = shared.cache.lock().expect("cache poisoned").get(key);
    shared.metrics.cache_lookup(hit.is_some());
    if let Some(text) = hit {
        shared.metrics.ok(true);
        write_line(writer, &ok_line(id.as_deref(), true, &text));
        return;
    }

    let deadline = request
        .deadline_ms
        .map(Duration::from_millis)
        .or(shared.default_deadline);
    let job = Job {
        request,
        id,
        writer: Arc::clone(writer),
        admitted: Instant::now(),
        deadline,
    };
    if let Err(refused) = shared.queue.try_push(job) {
        let reason = refused.reason();
        let job = refused.into_inner();
        shared.metrics.rejected(reason);
        write_line(&job.writer, &rejected_line(job.id.as_deref(), reason));
    }
    shared.metrics.queue_depth(shared.queue.depth() as u64);
}

/// Executes a run on a worker. After the (already-missed) result-cache
/// lookup, replay-eligible runs — `simulate`, and `chaos` with a
/// latency-only profile (keyed on the chaos seed) — walk the rest of the
/// cache hierarchy, honouring the request's `replay` mode (`off` skips
/// the hierarchy entirely; `on` turns every silent fallback into a typed
/// error): an
/// in-memory schedule-cache hit replays the captured control plane over
/// this request's seeded input (bit-exact, seed-independent key); a miss
/// consults the persistent store, where a sound on-disk entry also
/// replays (and repopulates the memory cache — the warm-start path); only
/// when every level misses does the full capturing simulation run, and
/// the fresh schedule is written back to both levels so the *next*
/// same-spec request — even in a future process — replays.
///
/// A damaged store entry is discarded and counted (`serve.store.corrupt`)
/// and the request recaptures: corruption degrades to a cache miss, never
/// to a wrong or failed response.
fn run_job(request: &RunRequest, shared: &Arc<Shared>) -> Result<smache_sim::Json, String> {
    if request.replay == ReplayMode::Off {
        return request.execute(); // the client opted out of replay
    }
    let Some(key) = request.schedule_key() else {
        // Plan/trace/corrupting-chaos runs have no replayable schedule.
        if request.replay == ReplayMode::On {
            return Err(format!(
                "replay=on, but `{}` runs have no replayable control schedule",
                request.kind.label()
            ));
        }
        return request.execute();
    };
    let (disabled, hit) = {
        let mut schedules = shared.schedules.lock().expect("schedules poisoned");
        if schedules.budget() == 0 {
            (true, None)
        } else {
            (false, schedules.get(key))
        }
    };
    if disabled && shared.store.is_none() {
        return request.execute(); // schedule caching disabled
    }
    if !disabled {
        shared.metrics.schedule_cache_lookup(hit.is_some());
    }
    if let Some(schedule) = hit {
        // A stale or mismatched schedule refuses cleanly; fall back to the
        // full simulation rather than failing the request — unless the
        // client forced `replay: on`, which surfaces the refusal.
        return match request.execute_replay(&schedule) {
            Err(e) if request.replay == ReplayMode::On => Err(e),
            Err(_) => request.execute(),
            ok => ok,
        };
    }

    // Third level: the persistent store.
    if let Some(store) = &shared.store {
        let loaded = store.lock().expect("store poisoned").load_or_evict(key);
        match loaded {
            Ok(Some(schedule)) => {
                shared.metrics.store_lookup(true);
                if !disabled {
                    let bytes = schedule.approx_bytes();
                    let mut schedules = shared.schedules.lock().expect("schedules poisoned");
                    schedules.insert(key, Arc::clone(&schedule), bytes);
                    shared
                        .metrics
                        .schedule_cache_state(schedules.bytes() as u64);
                }
                shared.publish_store_state();
                return match request.execute_replay(&schedule) {
                    Err(e) if request.replay == ReplayMode::On => Err(e),
                    Err(_) => request.execute(),
                    ok => ok,
                };
            }
            Ok(None) => shared.metrics.store_lookup(false),
            Err(_) => {
                // Typed damage: the entry is already discarded; recapture.
                shared.metrics.store_corrupt();
                shared.publish_store_state();
            }
        }
    }

    let (doc, schedule) = request.execute_capture()?;
    if let Some(schedule) = schedule {
        if !disabled {
            let bytes = schedule.approx_bytes();
            let mut schedules = shared.schedules.lock().expect("schedules poisoned");
            schedules.insert(key, Arc::clone(&schedule), bytes);
            shared
                .metrics
                .schedule_cache_state(schedules.bytes() as u64);
        }
        if let Some(store) = &shared.store {
            let saved = store.lock().expect("store poisoned").save(key, &schedule);
            if saved.is_ok() {
                shared.metrics.store_write();
            }
            shared.publish_store_state();
        }
    }
    Ok(doc)
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.queue_depth(shared.queue.depth() as u64);
        if let Some(deadline) = job.deadline {
            if job.admitted.elapsed() >= deadline {
                shared.metrics.rejected("deadline");
                write_line(&job.writer, &rejected_line(job.id.as_deref(), "deadline"));
                continue;
            }
        }
        match run_job(&job.request, shared) {
            Ok(result) => {
                let text = result.compact();
                shared
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(job.request.cache_key(), text.clone());
                shared.publish_cache_state();
                shared.metrics.ok(false);
                let us = job.admitted.elapsed().as_micros().min(u64::MAX as u128) as u64;
                shared.metrics.observe_latency_us(us);
                write_line(&job.writer, &ok_line(job.id.as_deref(), false, &text));
            }
            Err(msg) => {
                shared.metrics.error();
                write_line(&job.writer, &error_line(job.id.as_deref(), &msg));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addresses_parse() {
        assert_eq!(
            Listen::parse("unix:/tmp/s.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/s.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7777").unwrap(),
            Listen::Tcp("127.0.0.1:7777".to_string())
        );
        assert!(Listen::parse("http://x").is_err());
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_cap >= 1);
        assert!(c.cache_bytes > 0);
    }
}
