//! The long-running job server.
//!
//! ## Architecture
//!
//! ```text
//!              ┌───────────────── reactor thread (epoll) ─────────────────┐
//!  clients ──► │ accept ─► per-conn state machine ─┬─► cache hit ─► wbuf  │
//!              │   ▲   (rbuf ─► line ─► dispatch)  └─► AdmissionQueue ────┼──► workers
//!              │   └──────── completions ◄── wake pipe ◄──────────────────┼──── results
//!              └───────────────────────────────────────────────────────────┘
//! ```
//!
//! One **reactor thread** owns every socket: it accepts connections
//! (Unix or TCP), reads request bytes into per-connection buffers,
//! frames newline-delimited requests, and writes responses — all
//! non-blocking, driven by a level-triggered epoll loop (the vendored
//! [`epoll`] shim). Thousands of idle connections cost one registered
//! fd each, not a parked thread each.
//!
//! CPU-bound work stays on the **worker pool**: run requests that miss
//! the content-addressed [`ResultCache`] are classified by their
//! seed-blind schedule key (resident schedule → cheap replay, cold →
//! full capture) and pushed into the two-class
//! [`AdmissionQueue`], which admits
//! replays ahead of captures under overload and refuses the rest
//! *right now* with a typed `overloaded` rejection. Workers pop jobs
//! (replay lane first), check deadlines at dequeue **and again at
//! completion write-back**, execute through the cache hierarchy, and
//! hand the finished response line back to the reactor through a
//! completion list plus a [`WakePipe`] — workers never touch sockets.
//!
//! With [`--adaptive`](ServeConfig::adaptive) the admission limit is no
//! longer the fixed queue capacity but an AIMD controller
//! ([`AimdController`]): on-time completions grow it additively,
//! deadline misses halve it (with a cooldown), so the server sheds load
//! before queues turn into deadline graveyards.
//!
//! Behind the result cache sit two more levels for replay-eligible runs
//! (`simulate`, and `chaos` with a latency-only profile): an in-memory
//! [`ScheduleCache`] of captured control schedules, and — with
//! [`ServeConfig::store_dir`] set — a persistent [`ScheduleStore`] on
//! disk, so a restarted server replays previously captured specs
//! instead of recapturing them (see `docs/DEPLOYMENT.md`).
//!
//! `shutdown` begins a **graceful drain**: admission stops (`draining`
//! rejections), queued jobs still run to completion and their responses
//! are delivered through the reactor, pending write buffers get a
//! bounded grace period to flush, then workers and the reactor exit.
//!
//! Responses may interleave across a connection in any order when
//! multiple requests are in flight — clients correlate by `id`.

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epoll::WakePipe;
use smache::system::store::ScheduleStore;
use smache::system::{ControlSchedule, ReplayMode};
use smache_sim::ScheduleCache;

use crate::adaptive::{AimdConfig, AimdController};
use crate::bufpool::BufferPool;
use crate::cache::ResultCache;
use crate::metrics::ServerMetrics;
use crate::pool::AdmissionQueue;
use crate::protocol::{ok_line, rejected_line, RunRequest};
use crate::reactor::Reactor;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A Unix-domain socket at this path (created on start, removed on
    /// clean shutdown).
    Unix(PathBuf),
    /// A TCP bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
}

impl Listen {
    /// Parses the textual address form shared with the client:
    /// `unix:<path>` or `tcp:<host>:<port>`.
    pub fn parse(addr: &str) -> Result<Listen, String> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if let Some(hostport) = addr.strip_prefix("tcp:") {
            Ok(Listen::Tcp(hostport.to_string()))
        } else {
            Err(format!("address `{addr}` must start with unix: or tcp:"))
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub listen: Listen,
    /// Worker threads executing runs.
    pub workers: usize,
    /// Admission-queue capacity (jobs waiting for a worker). With
    /// [`adaptive`](Self::adaptive) on, this is the AIMD controller's
    /// ceiling rather than a fixed limit.
    pub queue_cap: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Schedule-cache byte budget (second-level cache of captured control
    /// schedules, keyed by spec + instances but **not** seed — a
    /// differing-seed `simulate` request that misses the result cache can
    /// still replay a cached schedule instead of re-simulating).
    pub schedule_cache_bytes: usize,
    /// Persistent schedule-store directory (third level). `Some(dir)`
    /// warm-starts the schedule cache from disk and writes every fresh
    /// capture back, so schedules survive restarts; `None` disables
    /// persistence (PR-5 behaviour).
    pub store_dir: Option<PathBuf>,
    /// Disk byte budget for the persistent store's LRU (`0` = unbounded).
    pub store_bytes: u64,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Open connections the reactor holds at once; further accepts are
    /// turned away with a typed error line.
    pub max_conns: usize,
    /// Drive the admission limit with the AIMD controller instead of the
    /// fixed [`queue_cap`](Self::queue_cap).
    pub adaptive: bool,
    /// Byte budget for the recycled connection-buffer pool.
    pub buffer_pool_bytes: usize,
    /// Close connections with no read/write progress and no job in
    /// flight for this long (typed `idle_timeout` notice). `None`
    /// disables the sweep.
    pub conn_idle_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            queue_cap: 32,
            cache_bytes: 4 << 20,
            schedule_cache_bytes: 4 << 20,
            store_dir: None,
            store_bytes: 64 << 20,
            default_deadline_ms: None,
            max_conns: 1024,
            adaptive: false,
            buffer_pool_bytes: 1 << 20,
            conn_idle_ms: None,
        }
    }
}

/// A job admitted to the queue: the parsed request plus the reactor
/// token of the connection awaiting the response.
pub(crate) struct Job {
    pub(crate) request: RunRequest,
    pub(crate) id: Option<String>,
    pub(crate) token: u64,
    pub(crate) admitted: Instant,
    pub(crate) deadline: Option<Duration>,
}

/// A finished response line travelling worker → reactor.
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) line: String,
}

/// The listening socket, handed to the reactor.
pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

pub(crate) struct Shared {
    pub(crate) queue: AdmissionQueue<Job>,
    pub(crate) cache: Mutex<ResultCache>,
    pub(crate) schedules: Mutex<ScheduleCache<ControlSchedule>>,
    pub(crate) store: Option<Mutex<ScheduleStore>>,
    pub(crate) metrics: ServerMetrics,
    pub(crate) shutdown: AtomicBool,
    pub(crate) default_deadline: Option<Duration>,
    /// The configured ceiling; the effective limit when not adaptive.
    pub(crate) queue_cap: usize,
    pub(crate) adaptive: Option<Mutex<AimdController>>,
    /// Finished response lines awaiting the reactor (paired with `wake`).
    pub(crate) completions: Mutex<Vec<Completion>>,
    pub(crate) wake: WakePipe,
    /// Jobs admitted whose completion the reactor has not yet consumed —
    /// the drain-exit condition.
    pub(crate) jobs_inflight: AtomicUsize,
    pub(crate) bufpool: BufferPool,
}

impl Shared {
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.drain();
        self.wake.wake();
    }

    /// The admission limit in force right now: the AIMD controller's
    /// output when adaptive, the fixed queue capacity otherwise.
    pub(crate) fn effective_limit(&self) -> usize {
        match &self.adaptive {
            Some(ctl) => ctl.lock().expect("adaptive poisoned").limit(),
            None => self.queue_cap,
        }
    }

    fn note_deadline_miss(&self, at_dequeue: bool) {
        self.metrics.deadline_miss(at_dequeue);
        self.metrics.rejected("deadline");
        if let Some(ctl) = &self.adaptive {
            ctl.lock()
                .expect("adaptive poisoned")
                .on_miss(Instant::now());
        }
        self.publish_adaptive_state();
    }

    fn note_success(&self) {
        if let Some(ctl) = &self.adaptive {
            let mut ctl = ctl.lock().expect("adaptive poisoned");
            ctl.on_success();
        }
        self.publish_adaptive_state();
    }

    pub(crate) fn publish_adaptive_state(&self) {
        if let Some(ctl) = &self.adaptive {
            let ctl = ctl.lock().expect("adaptive poisoned");
            self.metrics
                .adaptive_state(ctl.limit() as u64, ctl.increases(), ctl.decreases());
        }
    }

    pub(crate) fn publish_queue_depth(&self) {
        let (replay, capture) = self.queue.depth_by_class();
        self.metrics.queue_depth(replay as u64, capture as u64);
    }

    pub(crate) fn publish_cache_state(&self) {
        let cache = self.cache.lock().expect("cache poisoned");
        let stats = cache.stats();
        self.metrics
            .cache_state(stats.evictions, cache.bytes() as u64, cache.len() as u64);
    }

    pub(crate) fn publish_store_state(&self) {
        if let Some(store) = &self.store {
            let store = store.lock().expect("store poisoned");
            self.metrics.store_state(store.bytes(), store.len() as u64);
        }
    }

    pub(crate) fn publish_bufpool_state(&self) {
        let stats = self.bufpool.stats();
        self.metrics
            .bufpool_state(stats.pooled_bytes, stats.reused, stats.allocated);
    }

    /// Hands a finished response line back to the reactor.
    fn complete(&self, token: u64, line: String) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .push(Completion { token, line });
        self.wake.wake();
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](ServerHandle::shutdown) or [`join`](ServerHandle::join).
pub struct ServerHandle {
    addr: String,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The server's reachable address in `unix:`/`tcp:` form (with the
    /// actual port when TCP bound port 0).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Direct metrics access (tests and the stats command share it).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Initiates the graceful drain, then [`join`](Self::join)s.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_inner();
    }

    /// Blocks until the server exits (a client's `shutdown` request, or a
    /// prior [`shutdown`](Self::shutdown) call, triggers the drain).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Starts the server and returns its handle.
///
/// Binds the listen address, spawns the reactor and `workers` worker
/// threads, and returns immediately; the handle reports the actual bound
/// address.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let store = match &config.store_dir {
        Some(dir) => Some(Mutex::new(
            ScheduleStore::open(dir, config.store_bytes)
                .map_err(|e| std::io::Error::other(e.to_string()))?,
        )),
        None => None,
    };
    let queue_cap = config.queue_cap.max(1);
    // With replay serving off entirely, every job is a capture — a
    // reserved replay band would only shrink the usable queue.
    let replay_possible = config.schedule_cache_bytes > 0 || config.store_dir.is_some();
    let shared = Arc::new(Shared {
        queue: if replay_possible {
            AdmissionQueue::new()
        } else {
            AdmissionQueue::unbanded()
        },
        cache: Mutex::new(ResultCache::new(config.cache_bytes)),
        schedules: Mutex::new(ScheduleCache::new(config.schedule_cache_bytes)),
        store,
        metrics: ServerMetrics::new(),
        shutdown: AtomicBool::new(false),
        default_deadline: config.default_deadline_ms.map(Duration::from_millis),
        queue_cap,
        adaptive: config
            .adaptive
            .then(|| Mutex::new(AimdController::new(AimdConfig::for_capacity(queue_cap)))),
        completions: Mutex::new(Vec::new()),
        wake: WakePipe::new()?,
        jobs_inflight: AtomicUsize::new(0),
        bufpool: BufferPool::new(config.buffer_pool_bytes),
    });
    shared.publish_store_state();
    shared.publish_adaptive_state();

    let (listener, addr, unix_path) = match &config.listen {
        Listen::Unix(path) => {
            // A stale socket file from a killed process would fail the
            // bind; remove it (connect() distinguishes live servers).
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            (
                Listener::Unix(listener),
                format!("unix:{}", path.display()),
                Some(path.clone()),
            )
        }
        Listen::Tcp(hostport) => {
            let listener = TcpListener::bind(hostport)?;
            listener.set_nonblocking(true)?;
            let local = listener.local_addr()?;
            (Listener::Tcp(listener), format!("tcp:{local}"), None)
        }
    };

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    let reactor = Reactor::new(
        Arc::clone(&shared),
        listener,
        config.max_conns.max(1),
        config.conn_idle_ms.map(Duration::from_millis),
    )?;
    let reactor = std::thread::Builder::new()
        .name("serve-reactor".to_string())
        .spawn(move || reactor.run())?;

    Ok(ServerHandle {
        addr,
        shared,
        reactor: Some(reactor),
        workers,
        unix_path,
    })
}

/// Executes a run on a worker. After the (already-missed) result-cache
/// lookup, replay-eligible runs — `simulate`, and `chaos` with a
/// latency-only profile (keyed on the chaos seed) — walk the rest of the
/// cache hierarchy, honouring the request's `replay` mode (`off` skips
/// the hierarchy entirely; `on` turns every silent fallback into a typed
/// error): an
/// in-memory schedule-cache hit replays the captured control plane over
/// this request's seeded input (bit-exact, seed-independent key); a miss
/// consults the persistent store, where a sound on-disk entry also
/// replays (and repopulates the memory cache — the warm-start path); only
/// when every level misses does the full capturing simulation run, and
/// the fresh schedule is written back to both levels so the *next*
/// same-spec request — even in a future process — replays.
///
/// A damaged store entry is discarded and counted (`serve.store.corrupt`)
/// and the request recaptures: corruption degrades to a cache miss, never
/// to a wrong or failed response.
fn run_job(request: &RunRequest, shared: &Arc<Shared>) -> Result<smache_sim::Json, String> {
    if request.replay == ReplayMode::Off {
        return request.execute(); // the client opted out of replay
    }
    let Some(key) = request.schedule_key() else {
        // Plan/trace/corrupting-chaos runs have no replayable schedule.
        if request.replay == ReplayMode::On {
            return Err(format!(
                "replay=on, but `{}` runs have no replayable control schedule",
                request.kind.label()
            ));
        }
        return request.execute();
    };
    let (disabled, hit) = {
        let mut schedules = shared.schedules.lock().expect("schedules poisoned");
        if schedules.budget() == 0 {
            (true, None)
        } else {
            (false, schedules.get(key))
        }
    };
    if disabled && shared.store.is_none() {
        return request.execute(); // schedule caching disabled
    }
    if !disabled {
        shared.metrics.schedule_cache_lookup(hit.is_some());
    }
    if let Some(schedule) = hit {
        // A stale or mismatched schedule refuses cleanly; fall back to the
        // full simulation rather than failing the request — unless the
        // client forced `replay: on`, which surfaces the refusal.
        return match request.execute_replay(&schedule) {
            Err(e) if request.replay == ReplayMode::On => Err(e),
            Err(_) => request.execute(),
            ok => ok,
        };
    }

    // Third level: the persistent store.
    if let Some(store) = &shared.store {
        let loaded = store.lock().expect("store poisoned").load_or_evict(key);
        match loaded {
            Ok(Some(schedule)) => {
                shared.metrics.store_lookup(true);
                if !disabled {
                    let bytes = schedule.approx_bytes();
                    let mut schedules = shared.schedules.lock().expect("schedules poisoned");
                    schedules.insert(key, Arc::clone(&schedule), bytes);
                    shared
                        .metrics
                        .schedule_cache_state(schedules.bytes() as u64);
                }
                shared.publish_store_state();
                return match request.execute_replay(&schedule) {
                    Err(e) if request.replay == ReplayMode::On => Err(e),
                    Err(_) => request.execute(),
                    ok => ok,
                };
            }
            Ok(None) => shared.metrics.store_lookup(false),
            Err(_) => {
                // Typed damage: the entry is already discarded; recapture.
                shared.metrics.store_corrupt();
                shared.publish_store_state();
            }
        }
    }

    let (doc, schedule) = request.execute_capture()?;
    if let Some(schedule) = schedule {
        if !disabled {
            let bytes = schedule.approx_bytes();
            let mut schedules = shared.schedules.lock().expect("schedules poisoned");
            schedules.insert(key, Arc::clone(&schedule), bytes);
            shared
                .metrics
                .schedule_cache_state(schedules.bytes() as u64);
        }
        if let Some(store) = &shared.store {
            let saved = store.lock().expect("store poisoned").save(key, &schedule);
            if saved.is_ok() {
                shared.metrics.store_write();
            }
            shared.publish_store_state();
        }
    }
    Ok(doc)
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.publish_queue_depth();
        // First deadline checkpoint: the job expired while queued — a
        // worker picking it up now would only burn CPU on a response the
        // client has already written off.
        if let Some(deadline) = job.deadline {
            if job.admitted.elapsed() >= deadline {
                shared.note_deadline_miss(true);
                shared.complete(job.token, rejected_line(job.id.as_deref(), "deadline"));
                continue;
            }
        }
        match run_job(&job.request, shared) {
            Ok(result) => {
                let text = result.compact();
                // The result is computed either way: cache it so the next
                // same-key request hits, even when *this* response misses
                // its deadline below.
                shared
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(job.request.cache_key(), text.clone());
                shared.publish_cache_state();
                // Second deadline checkpoint: the run itself overran. The
                // dequeue-time check can't see this — a job admitted with
                // 1 ms left passes it, runs for 50 ms, and would be
                // delivered long past its promise.
                let overran = job.deadline.is_some_and(|d| job.admitted.elapsed() >= d);
                if overran {
                    shared.note_deadline_miss(false);
                    shared.complete(job.token, rejected_line(job.id.as_deref(), "deadline"));
                } else {
                    shared.metrics.ok(false);
                    let us = job.admitted.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    shared.metrics.observe_latency_us(us);
                    shared.note_success();
                    shared.complete(job.token, ok_line(job.id.as_deref(), false, &text));
                }
            }
            Err(msg) => {
                shared.metrics.error();
                shared.complete(
                    job.token,
                    crate::protocol::error_line(job.id.as_deref(), &msg),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addresses_parse() {
        assert_eq!(
            Listen::parse("unix:/tmp/s.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/s.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7777").unwrap(),
            Listen::Tcp("127.0.0.1:7777".to_string())
        );
        assert!(Listen::parse("http://x").is_err());
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_cap >= 1);
        assert!(c.cache_bytes > 0);
        assert!(c.max_conns >= 1);
        assert!(!c.adaptive);
        assert!(c.conn_idle_ms.is_none());
    }
}
