//! Admission control: a bounded job queue with explicit overload
//! rejection and graceful drain.
//!
//! The queue is the server's only buffering: when it is full, new work is
//! *rejected at admission* with a typed reason instead of queueing
//! unboundedly — the client always gets an answer, never an invisible
//! wait. On shutdown the queue [drains](BoundedQueue::drain): already
//! admitted jobs still run, new pushes are refused, and poppers (the
//! worker threads) unblock and exit once the backlog is gone.
//!
//! This is the serving-side sibling of the one-shot
//! [`run_batch`](smache_sim::run_batch) primitive: the same
//! shared-queue/worker-pull discipline, extended with a capacity bound
//! and a lifecycle, for work that arrives continuously instead of as a
//! closed batch.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — the overload signal.
    Full(T),
    /// The queue is draining for shutdown.
    Draining(T),
}

impl<T> PushError<T> {
    /// The wire-protocol rejection reason for this refusal.
    pub fn reason(&self) -> &'static str {
        match self {
            PushError::Full(_) => "overloaded",
            PushError::Draining(_) => "draining",
        }
    }

    /// Recovers the rejected job.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(t) | PushError::Draining(t) => t,
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    draining: bool,
}

/// A blocking MPMC queue with a hard capacity and a drain lifecycle.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending jobs
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job, or refuses immediately — never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.draining {
            return Err(PushError::Draining(item));
        }
        if state.queue.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.queue.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Takes the oldest job, blocking while the queue is empty. Returns
    /// `None` once the queue is draining *and* empty — the worker's exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.draining {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Begins the graceful drain: refuses new jobs, lets queued ones run,
    /// and releases blocked poppers as the backlog empties.
    pub fn drain(&self) {
        self.state.lock().expect("queue poisoned").draining = true;
        self.available.notify_all();
    }

    /// Jobs currently waiting (racy by nature; for metrics).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").queue.len()
    }

    /// True once [`drain`](Self::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("queue poisoned").draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(8);
        for n in 0..5 {
            q.try_push(n).unwrap();
        }
        assert_eq!(q.depth(), 5);
        let popped: Vec<i32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overload_is_an_immediate_typed_refusal() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let err = q.try_push(3).unwrap_err();
        assert_eq!(err.reason(), "overloaded");
        assert_eq!(err.into_inner(), 3);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn drain_refuses_new_work_but_serves_the_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.drain();
        assert!(q.is_draining());
        assert_eq!(q.try_push(3).unwrap_err().reason(), "draining");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "drained queue stays drained");
    }

    #[test]
    fn drain_releases_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the poppers a moment to block, then drain.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.drain();
        for w in waiters {
            assert_eq!(w.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let q = Arc::new(BoundedQueue::<u64>::new(1024));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for n in 0..100 {
                        q.try_push(p * 1000 + n).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.drain();
        let mut seen = Vec::new();
        while let Some(v) = q.pop() {
            seen.push(v);
        }
        assert_eq!(seen.len(), 400);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 400, "no duplicates, no losses");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap_err().reason(), "overloaded");
    }
}
