//! Admission control: a bounded job queue with explicit overload
//! rejection and graceful drain.
//!
//! The queue is the server's only buffering: when it is full, new work is
//! *rejected at admission* with a typed reason instead of queueing
//! unboundedly — the client always gets an answer, never an invisible
//! wait. On shutdown the queue [drains](BoundedQueue::drain): already
//! admitted jobs still run, new pushes are refused, and poppers (the
//! worker threads) unblock and exit once the backlog is gone.
//!
//! This is the serving-side sibling of the one-shot
//! [`run_batch`](smache_sim::run_batch) primitive: the same
//! shared-queue/worker-pull discipline, extended with a capacity bound
//! and a lifecycle, for work that arrives continuously instead of as a
//! closed batch.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — the overload signal.
    Full(T),
    /// The queue is draining for shutdown.
    Draining(T),
}

impl<T> PushError<T> {
    /// The wire-protocol rejection reason for this refusal.
    pub fn reason(&self) -> &'static str {
        match self {
            PushError::Full(_) => "overloaded",
            PushError::Draining(_) => "draining",
        }
    }

    /// Recovers the rejected job.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(t) | PushError::Draining(t) => t,
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    draining: bool,
}

/// A blocking MPMC queue with a hard capacity and a drain lifecycle.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending jobs
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job, or refuses immediately — never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.draining {
            return Err(PushError::Draining(item));
        }
        if state.queue.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.queue.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Takes the oldest job, blocking while the queue is empty. Returns
    /// `None` once the queue is draining *and* empty — the worker's exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.draining {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Begins the graceful drain: refuses new jobs, lets queued ones run,
    /// and releases blocked poppers as the backlog empties.
    pub fn drain(&self) {
        self.state.lock().expect("queue poisoned").draining = true;
        self.available.notify_all();
    }

    /// Jobs currently waiting (racy by nature; for metrics).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").queue.len()
    }

    /// True once [`drain`](Self::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("queue poisoned").draining
    }
}

/// How expensive an admitted job is expected to be, decided *before*
/// enqueue from the request's seed-blind schedule key.
///
/// A request whose schedule is already resident (in the in-memory
/// [`ScheduleCache`](smache_sim::ScheduleCache) or the on-disk store) is
/// a [`Replay`](JobClass::Replay): the expensive capture is skipped and
/// the worker only re-executes the decision trace. Everything else —
/// cold schedules, plans, traces, corrupting-chaos runs — is a
/// [`Capture`](JobClass::Capture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Schedule resident: cheap, bounded replay work.
    Replay,
    /// Cold or unkeyed: full simulation (capture) work.
    Capture,
}

struct ClassState<T> {
    replay: VecDeque<T>,
    capture: VecDeque<T>,
    draining: bool,
}

impl<T> ClassState<T> {
    fn depth(&self) -> usize {
        self.replay.len() + self.capture.len()
    }
}

/// The reactor's two-class admission queue: schedule-aware priority with
/// a reserved headroom band.
///
/// Both classes share one depth limit (the *effective* limit — the AIMD
/// controller's output when `--adaptive` is on, the configured
/// `--queue-cap` otherwise), passed per push because it moves at
/// runtime. The scheduling policy is:
///
/// * **Admission** — [`Replay`](JobClass::Replay) jobs are admitted up
///   to the full limit; [`Capture`](JobClass::Capture) jobs only while
///   the queue is below ~¾ of it. Under overload the top quarter of the
///   queue is reserved for cheap replays, so a flood of cold captures
///   cannot starve the traffic the cache exists to accelerate. (An
///   [`unbanded`](AdmissionQueue::unbanded) queue skips the reserve —
///   for servers where replay serving is off and every job is a
///   capture.)
/// * **Dispatch** — [`pop`](AdmissionQueue::pop) serves the replay lane
///   first (FIFO within each lane). Replays complete in microseconds,
///   so draining them first frees queue slots fastest and keeps
///   worst-case capture latency bounded by the capture backlog alone.
///
/// Lifecycle (drain semantics) matches [`BoundedQueue`].
pub struct AdmissionQueue<T> {
    state: Mutex<ClassState<T>>,
    available: Condvar,
    banded: bool,
}

impl<T> AdmissionQueue<T> {
    /// Creates an empty queue with the reserved replay band. Capacity is
    /// per-push (`limit`), not fixed at construction.
    pub fn new() -> AdmissionQueue<T> {
        AdmissionQueue {
            state: Mutex::new(ClassState {
                replay: VecDeque::new(),
                capture: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            banded: true,
        }
    }

    /// Creates an empty queue *without* the reserved band: captures are
    /// admitted up to the full limit. For servers with replay serving
    /// disabled (no schedule cache, no store), where every job is
    /// necessarily a capture and a reserve would only waste capacity.
    pub fn unbanded() -> AdmissionQueue<T> {
        AdmissionQueue {
            banded: false,
            ..AdmissionQueue::new()
        }
    }

    /// The depth below which `Capture` jobs are still admitted: ¾ of
    /// the limit, never below 1 so a tiny limit still admits captures.
    pub fn capture_band(limit: usize) -> usize {
        (limit - limit / 4).max(1)
    }

    /// Admits a job under the current `limit`, or refuses immediately —
    /// never blocks. On a banded queue, `Capture` jobs are additionally
    /// refused once the queue reaches
    /// [`capture_band`](Self::capture_band)`(limit)`.
    pub fn try_push(&self, item: T, class: JobClass, limit: usize) -> Result<(), PushError<T>> {
        let limit = limit.max(1);
        let mut state = self.state.lock().expect("queue poisoned");
        if state.draining {
            return Err(PushError::Draining(item));
        }
        let depth = state.depth();
        let band = match class {
            JobClass::Capture if self.banded => Self::capture_band(limit),
            _ => limit,
        };
        if depth >= band {
            return Err(PushError::Full(item));
        }
        match class {
            JobClass::Replay => state.replay.push_back(item),
            JobClass::Capture => state.capture.push_back(item),
        }
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Takes the next job — replay lane first — blocking while both
    /// lanes are empty. Returns `None` once draining *and* empty.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.replay.pop_front() {
                return Some(item);
            }
            if let Some(item) = state.capture.pop_front() {
                return Some(item);
            }
            if state.draining {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Begins the graceful drain: refuses new jobs, lets queued ones
    /// run, and releases blocked poppers as the backlog empties.
    pub fn drain(&self) {
        self.state.lock().expect("queue poisoned").draining = true;
        self.available.notify_all();
    }

    /// Jobs currently waiting across both lanes (racy; for metrics).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").depth()
    }

    /// `(replay, capture)` lane depths (racy; for metrics).
    pub fn depth_by_class(&self) -> (usize, usize) {
        let state = self.state.lock().expect("queue poisoned");
        (state.replay.len(), state.capture.len())
    }

    /// True once [`drain`](Self::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("queue poisoned").draining
    }
}

impl<T> Default for AdmissionQueue<T> {
    fn default() -> AdmissionQueue<T> {
        AdmissionQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(8);
        for n in 0..5 {
            q.try_push(n).unwrap();
        }
        assert_eq!(q.depth(), 5);
        let popped: Vec<i32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overload_is_an_immediate_typed_refusal() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let err = q.try_push(3).unwrap_err();
        assert_eq!(err.reason(), "overloaded");
        assert_eq!(err.into_inner(), 3);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn drain_refuses_new_work_but_serves_the_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.drain();
        assert!(q.is_draining());
        assert_eq!(q.try_push(3).unwrap_err().reason(), "draining");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "drained queue stays drained");
    }

    #[test]
    fn drain_releases_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the poppers a moment to block, then drain.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.drain();
        for w in waiters {
            assert_eq!(w.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let q = Arc::new(BoundedQueue::<u64>::new(1024));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for n in 0..100 {
                        q.try_push(p * 1000 + n).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.drain();
        let mut seen = Vec::new();
        while let Some(v) = q.pop() {
            seen.push(v);
        }
        assert_eq!(seen.len(), 400);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 400, "no duplicates, no losses");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap_err().reason(), "overloaded");
    }

    #[test]
    fn admission_serves_the_replay_lane_first() {
        let q = AdmissionQueue::new();
        q.try_push("cap1", JobClass::Capture, 8).unwrap();
        q.try_push("rep1", JobClass::Replay, 8).unwrap();
        q.try_push("cap2", JobClass::Capture, 8).unwrap();
        q.try_push("rep2", JobClass::Replay, 8).unwrap();
        assert_eq!(q.depth_by_class(), (2, 2));
        let order: Vec<&str> = (0..4).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, vec!["rep1", "rep2", "cap1", "cap2"]);
    }

    #[test]
    fn the_top_band_is_reserved_for_replays() {
        let q = AdmissionQueue::new();
        let limit = 8; // capture band = 6
        for n in 0..6 {
            q.try_push(n, JobClass::Capture, limit).unwrap();
        }
        // Captures are refused at the band even though slots remain…
        let err = q.try_push(6, JobClass::Capture, limit).unwrap_err();
        assert_eq!(err.reason(), "overloaded");
        // …while replays still fit, up to the full limit.
        q.try_push(100, JobClass::Replay, limit).unwrap();
        q.try_push(101, JobClass::Replay, limit).unwrap();
        assert_eq!(
            q.try_push(102, JobClass::Replay, limit)
                .unwrap_err()
                .reason(),
            "overloaded"
        );
    }

    #[test]
    fn a_shrinking_limit_tightens_admission_immediately() {
        let q = AdmissionQueue::new();
        for n in 0..4 {
            q.try_push(n, JobClass::Replay, 16).unwrap();
        }
        // The adaptive controller cut the limit below the current depth:
        // everything is refused until workers catch up.
        assert!(q.try_push(9, JobClass::Replay, 4).is_err());
        assert!(q.try_push(9, JobClass::Capture, 4).is_err());
        q.pop().unwrap();
        q.try_push(9, JobClass::Replay, 4).unwrap();
    }

    #[test]
    fn an_unbanded_queue_admits_captures_to_the_full_limit() {
        let q = AdmissionQueue::unbanded();
        let limit = 8;
        for n in 0..8 {
            q.try_push(n, JobClass::Capture, limit).unwrap();
        }
        assert_eq!(
            q.try_push(8, JobClass::Capture, limit)
                .unwrap_err()
                .reason(),
            "overloaded"
        );
    }

    #[test]
    fn tiny_limits_still_admit_captures() {
        let q = AdmissionQueue::new();
        assert_eq!(AdmissionQueue::<u32>::capture_band(1), 1);
        q.try_push(1u32, JobClass::Capture, 1).unwrap();
        assert!(q.try_push(2, JobClass::Capture, 1).is_err());
    }

    #[test]
    fn admission_queue_drains_like_the_bounded_queue() {
        let q = AdmissionQueue::new();
        q.try_push(1, JobClass::Capture, 8).unwrap();
        q.try_push(2, JobClass::Replay, 8).unwrap();
        q.drain();
        assert!(q.is_draining());
        assert_eq!(
            q.try_push(3, JobClass::Replay, 8).unwrap_err().reason(),
            "draining"
        );
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn admission_drain_releases_blocked_poppers() {
        let q = Arc::new(AdmissionQueue::<u32>::new());
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.drain();
        for w in waiters {
            assert_eq!(w.join().unwrap(), None);
        }
    }
}
