//! A reusable byte-buffer pool bounding per-connection memory.
//!
//! Every reactor connection owns two buffers (read accumulation, write
//! queue). With thousands of connections churning, allocating them per
//! connection — or worse, per line — fragments the heap and makes peak
//! RSS proportional to the *lifetime* connection count. The pool
//! recycles buffers instead: [`get`](BufferPool::get) hands out a
//! previously-used buffer when one is free, and [`put`](BufferPool::put)
//! returns a cleared buffer subject to two bounds:
//!
//! * a **per-buffer cap** — a buffer that grew past
//!   [`MAX_POOLED_BUF`] (a pathological client sent a huge line) is
//!   dropped rather than pooled, so one spike never pins memory;
//! * a **pool byte budget** (`--buffer-pool-kb`) — returns beyond the
//!   budget are dropped, so the free list itself is bounded.
//!
//! The pool is a plain mutex-guarded free list: get/put are two pointer
//! moves under an uncontended lock, far below the cost of the I/O they
//! wrap.

use std::sync::Mutex;

/// Buffers that grew beyond this capacity are never pooled.
pub const MAX_POOLED_BUF: usize = 64 * 1024;

/// The capacity new buffers start with (one typical request line).
const INITIAL_BUF: usize = 4 * 1024;

/// Running totals the `stats` command reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Buffers handed out from the free list (allocation avoided).
    pub reused: u64,
    /// Buffers freshly allocated (free list empty).
    pub allocated: u64,
    /// Returned buffers dropped (over the per-buffer cap or the budget).
    pub dropped: u64,
    /// Bytes currently parked in the free list.
    pub pooled_bytes: u64,
}

struct PoolState {
    free: Vec<Vec<u8>>,
    pooled_bytes: usize,
    stats: BufPoolStats,
}

/// A bounded free list of reusable `Vec<u8>` buffers.
pub struct BufferPool {
    state: Mutex<PoolState>,
    budget: usize,
}

impl BufferPool {
    /// Creates a pool parking at most `budget` bytes of free buffers.
    /// A `0` budget disables pooling: every `get` allocates, every `put`
    /// drops.
    pub fn new(budget: usize) -> BufferPool {
        BufferPool {
            state: Mutex::new(PoolState {
                free: Vec::new(),
                pooled_bytes: 0,
                stats: BufPoolStats::default(),
            }),
            budget,
        }
    }

    /// Takes a cleared buffer — recycled when one is free, freshly
    /// allocated otherwise.
    pub fn get(&self) -> Vec<u8> {
        let mut state = self.state.lock().expect("bufpool poisoned");
        match state.free.pop() {
            Some(buf) => {
                state.pooled_bytes -= buf.capacity();
                state.stats.reused += 1;
                state.stats.pooled_bytes = state.pooled_bytes as u64;
                buf
            }
            None => {
                state.stats.allocated += 1;
                drop(state);
                Vec::with_capacity(INITIAL_BUF)
            }
        }
    }

    /// Returns a buffer to the pool (cleared here; callers hand it back
    /// as-is). Oversized buffers and returns beyond the byte budget are
    /// dropped.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut state = self.state.lock().expect("bufpool poisoned");
        if buf.capacity() > MAX_POOLED_BUF || state.pooled_bytes + buf.capacity() > self.budget {
            state.stats.dropped += 1;
            return;
        }
        state.pooled_bytes += buf.capacity();
        state.stats.pooled_bytes = state.pooled_bytes as u64;
        state.free.push(buf);
    }

    /// The running reuse/allocation/drop totals.
    pub fn stats(&self) -> BufPoolStats {
        self.state.lock().expect("bufpool poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_not_reallocated() {
        let pool = BufferPool::new(1 << 20);
        let mut a = pool.get();
        a.extend_from_slice(b"hello");
        let cap = a.capacity();
        pool.put(a);

        let b = pool.get();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "same allocation came back");
        let s = pool.stats();
        assert_eq!((s.allocated, s.reused, s.dropped), (1, 1, 0));
    }

    #[test]
    fn oversized_buffers_are_never_pooled() {
        let pool = BufferPool::new(1 << 30);
        let mut big = pool.get();
        big.reserve(MAX_POOLED_BUF + 1);
        pool.put(big);
        assert_eq!(pool.stats().dropped, 1);
        assert_eq!(pool.stats().pooled_bytes, 0);
    }

    #[test]
    fn the_byte_budget_bounds_the_free_list() {
        let pool = BufferPool::new(INITIAL_BUF); // room for exactly one
        let a = pool.get();
        let b = pool.get();
        pool.put(a);
        pool.put(b);
        let s = pool.stats();
        assert_eq!(s.dropped, 1, "second return exceeded the budget");
        assert_eq!(s.pooled_bytes, INITIAL_BUF as u64);
    }

    #[test]
    fn zero_budget_disables_pooling() {
        let pool = BufferPool::new(0);
        pool.put(pool.get());
        assert_eq!(pool.stats().dropped, 1);
        let _ = pool.get();
        assert_eq!(pool.stats().allocated, 2);
        assert_eq!(pool.stats().reused, 0);
    }
}
