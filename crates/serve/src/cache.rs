//! The content-addressed result cache.
//!
//! Keys are the 128-bit request fingerprints from
//! [`RunRequest::cache_key`](crate::protocol::RunRequest::cache_key);
//! values are the *serialised* result JSON, stored as text so a hit is
//! handed out byte-identical to the run that produced it (no re-encode,
//! no drift).
//!
//! Eviction is least-recently-used under a byte budget: every `get` hit
//! and every `insert` stamps the entry with a monotonic use counter, and
//! inserts evict the lowest-stamped entries until the budget holds. The
//! policy is fully deterministic — same operation sequence, same
//! evictions — which the eviction-order test pins.
//!
//! Entries are held as `Arc<str>`: a hit hands out a reference-counted
//! view of the cached text instead of copying it, so the reactor thread
//! serves hot results in O(1) regardless of response size.

use std::collections::BTreeMap;
use std::sync::Arc;

/// Running totals the server's `stats` command reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Results larger than the whole budget, never stored.
    pub oversize: u64,
}

#[derive(Debug)]
struct Entry {
    text: Arc<str>,
    last_used: u64,
}

/// An LRU result cache with a byte budget.
#[derive(Debug)]
pub struct ResultCache {
    budget: usize,
    bytes: usize,
    tick: u64,
    entries: BTreeMap<(u64, u64), Entry>,
    stats: CacheStats,
}

impl ResultCache {
    /// Creates an empty cache holding at most `budget` bytes of result
    /// text.
    pub fn new(budget: usize) -> ResultCache {
        ResultCache {
            budget,
            bytes: 0,
            tick: 0,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. The returned
    /// `Arc<str>` shares the cached allocation — no copy, O(1) per hit.
    pub fn get(&mut self, key: (u64, u64)) -> Option<Arc<str>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.text))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `text` under `key`, evicting least-recently-used entries
    /// until the byte budget holds. A result larger than the entire
    /// budget is not stored (counted in [`CacheStats::oversize`]).
    pub fn insert(&mut self, key: (u64, u64), text: String) {
        if text.len() > self.budget {
            self.stats.oversize += 1;
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                last_used: self.tick,
                text: Arc::from(text),
            },
        ) {
            self.bytes -= old.text.len();
        } else {
            self.stats.insertions += 1;
        }
        self.bytes += self.entries[&key].text.len();

        while self.bytes > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("over budget implies non-empty");
            let evicted = self.entries.remove(&victim).expect("victim exists");
            self.bytes -= evicted.text.len();
            self.stats.evictions += 1;
        }
    }

    /// Bytes of result text currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running hit/miss/eviction totals.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Keys currently resident, least-recently-used first — the order the
    /// next evictions would take. Test/diagnostic surface.
    pub fn keys_by_age(&self) -> Vec<(u64, u64)> {
        let mut keys: Vec<_> = self
            .entries
            .iter()
            .map(|(&k, e)| (e.last_used, k))
            .collect();
        keys.sort();
        keys.into_iter().map(|(_, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> (u64, u64) {
        (n, n.wrapping_mul(31))
    }

    #[test]
    fn hit_miss_and_byte_accounting() {
        let mut c = ResultCache::new(100);
        assert_eq!(c.get(key(1)), None);
        c.insert(key(1), "x".repeat(10));
        assert_eq!(c.get(key(1)).as_deref(), Some("xxxxxxxxxx"));
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.len(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = ResultCache::new(100);
        c.insert(key(1), "aaaa".to_string());
        c.insert(key(1), "bb".to_string());
        assert_eq!(c.bytes(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(key(1)).as_deref(), Some("bb"));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        // Budget fits three 10-byte entries. Touch `a`, then insert `d`:
        // `b` (now the oldest) must be evicted, not `a`.
        let mut c = ResultCache::new(30);
        c.insert(key(1), "a".repeat(10));
        c.insert(key(2), "b".repeat(10));
        c.insert(key(3), "c".repeat(10));
        assert!(c.get(key(1)).is_some()); // refresh a
        c.insert(key(4), "d".repeat(10));
        assert_eq!(c.get(key(2)), None, "LRU victim must be b");
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert!(c.get(key(4)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.bytes(), 30);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // The full age order is observable and matches eviction order.
        let mut c = ResultCache::new(40);
        for n in 1..=4 {
            c.insert(key(n), "x".repeat(10));
        }
        c.get(key(2));
        c.get(key(1));
        assert_eq!(c.keys_by_age(), vec![key(3), key(4), key(2), key(1)]);
        // One oversized insert evicts in exactly that order.
        c.insert(key(5), "y".repeat(35));
        assert_eq!(c.keys_by_age(), vec![key(5)]);
        assert_eq!(c.stats().evictions, 4);
    }

    #[test]
    fn oversize_results_are_never_stored() {
        let mut c = ResultCache::new(10);
        c.insert(key(1), "z".repeat(11));
        assert!(c.is_empty());
        assert_eq!(c.stats().oversize, 1);
        assert_eq!(c.stats().insertions, 0);
    }
}
