//! AIMD adaptive concurrency control for the serve admission limit.
//!
//! A fixed `--queue-cap` is tuned for one workload: set it for fast
//! replay traffic and a burst of cold captures blows every deadline
//! before admission pushes back; set it for captures and replay traffic
//! is rejected while workers sit idle. The controller turns the cap
//! into a *signal-driven* limit, borrowing TCP's additive-increase /
//! multiplicative-decrease shape:
//!
//! * a job finishing **within** its deadline nudges the limit up by
//!   `increase / limit` (one whole step per limit's-worth of
//!   successes — the additive increase);
//! * a **deadline miss** (at dequeue or at completion) cuts the limit
//!   by the factor `decrease` — the multiplicative decrease — at most
//!   once per `decrease_cooldown`, so a burst of misses from the same
//!   overload episode counts once rather than collapsing the limit to
//!   the floor.
//!
//! The limit is clamped to `[min, max]`; `max` is the configured queue
//! capacity, so the controller can only ever tighten admission, never
//! exceed what the operator allowed.

use std::time::{Duration, Instant};

/// Tuning knobs for [`AimdController`].
#[derive(Debug, Clone, Copy)]
pub struct AimdConfig {
    /// Floor the limit never drops below (≥ 1).
    pub min: usize,
    /// Ceiling, normally the configured queue capacity.
    pub max: usize,
    /// Additive step credited per limit's-worth of on-time completions.
    pub increase: f64,
    /// Multiplicative factor applied on a deadline miss (0 < f < 1).
    pub decrease: f64,
    /// Minimum spacing between multiplicative decreases.
    pub decrease_cooldown: Duration,
}

impl AimdConfig {
    /// Defaults for a queue capacity of `max`: floor 1, one-step
    /// additive increase, halving decrease, 50 ms cooldown.
    pub fn for_capacity(max: usize) -> AimdConfig {
        AimdConfig {
            min: 1,
            max: max.max(1),
            increase: 1.0,
            decrease: 0.5,
            decrease_cooldown: Duration::from_millis(50),
        }
    }
}

/// The AIMD state machine. Callers hold it behind a mutex and feed it
/// completion outcomes; [`limit`](AimdController::limit) is the current
/// admission bound.
#[derive(Debug)]
pub struct AimdController {
    cfg: AimdConfig,
    /// Fractional limit; `limit()` floors it. Kept as f64 so sub-step
    /// additive credit accumulates instead of truncating to zero.
    level: f64,
    last_decrease: Option<Instant>,
    increases: u64,
    decreases: u64,
}

impl AimdController {
    /// Starts at the ceiling: the controller only backs off once the
    /// workload shows it must.
    pub fn new(cfg: AimdConfig) -> AimdController {
        let cfg = AimdConfig {
            min: cfg.min.max(1),
            max: cfg.max.max(cfg.min.max(1)),
            ..cfg
        };
        AimdController {
            level: cfg.max as f64,
            cfg,
            last_decrease: None,
            increases: 0,
            decreases: 0,
        }
    }

    /// The current admission limit, in `[min, max]`.
    pub fn limit(&self) -> usize {
        (self.level.floor() as usize).clamp(self.cfg.min, self.cfg.max)
    }

    /// A job completed within its deadline: additive increase.
    pub fn on_success(&mut self) {
        if self.level >= self.cfg.max as f64 {
            return;
        }
        let before = self.limit();
        self.level =
            (self.level + self.cfg.increase / self.level.max(1.0)).min(self.cfg.max as f64);
        if self.limit() > before {
            self.increases += 1;
        }
    }

    /// A job missed its deadline at `now`: multiplicative decrease,
    /// rate-limited by the cooldown.
    pub fn on_miss(&mut self, now: Instant) {
        if let Some(last) = self.last_decrease {
            if now.duration_since(last) < self.cfg.decrease_cooldown {
                return;
            }
        }
        self.last_decrease = Some(now);
        self.level = (self.level * self.cfg.decrease).max(self.cfg.min as f64);
        self.decreases += 1;
    }

    /// Whole-step increases applied so far (the `serve.adaptive.increases`
    /// counter).
    pub fn increases(&self) -> u64 {
        self.increases
    }

    /// Multiplicative decreases applied so far (the
    /// `serve.adaptive.decreases` counter).
    pub fn decreases(&self) -> u64 {
        self.decreases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max: usize) -> AimdConfig {
        AimdConfig {
            decrease_cooldown: Duration::ZERO,
            ..AimdConfig::for_capacity(max)
        }
    }

    #[test]
    fn starts_at_the_ceiling() {
        let ctl = AimdController::new(cfg(64));
        assert_eq!(ctl.limit(), 64);
    }

    #[test]
    fn misses_halve_the_limit_down_to_the_floor() {
        let mut ctl = AimdController::new(cfg(64));
        let t = Instant::now();
        ctl.on_miss(t);
        assert_eq!(ctl.limit(), 32);
        for _ in 0..20 {
            ctl.on_miss(t);
        }
        assert_eq!(ctl.limit(), 1, "clamped at the floor");
        assert!(ctl.decreases() >= 7);
    }

    #[test]
    fn successes_recover_the_limit_additively() {
        let mut ctl = AimdController::new(cfg(8));
        ctl.on_miss(Instant::now());
        assert_eq!(ctl.limit(), 4);
        // Additive increase needs ~limit successes per step: bounded work.
        for _ in 0..200 {
            ctl.on_success();
        }
        assert_eq!(ctl.limit(), 8, "recovers all the way to max");
        assert!(ctl.increases() >= 4);
    }

    #[test]
    fn cooldown_coalesces_a_burst_of_misses() {
        let mut ctl = AimdController::new(AimdConfig::for_capacity(64));
        let t = Instant::now();
        ctl.on_miss(t);
        ctl.on_miss(t + Duration::from_millis(1));
        ctl.on_miss(t + Duration::from_millis(2));
        assert_eq!(ctl.limit(), 32, "one episode, one decrease");
        assert_eq!(ctl.decreases(), 1);
        ctl.on_miss(t + Duration::from_millis(60));
        assert_eq!(ctl.limit(), 16, "a later episode counts again");
    }

    #[test]
    fn success_at_the_ceiling_is_a_no_op() {
        let mut ctl = AimdController::new(cfg(16));
        ctl.on_success();
        assert_eq!(ctl.limit(), 16);
        assert_eq!(ctl.increases(), 0);
    }
}
