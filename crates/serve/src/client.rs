//! A small blocking client for the serve protocol.
//!
//! Connects over the same `unix:<path>` / `tcp:<host>:<port>` address
//! forms the server reports, sends one JSON request per line, and reads
//! one JSON response per line. [`Client::call`] is the lockstep
//! convenience; open-loop callers use [`send`](Client::send) /
//! [`recv`](Client::recv) directly and correlate responses by `id`
//! (responses to pipelined requests may arrive in any order).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use smache_sim::Json;

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to `unix:<path>` or `tcp:<host>:<port>`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let (reader, writer) = if let Some(path) = addr.strip_prefix("unix:") {
            let s = UnixStream::connect(path)?;
            let r = s.try_clone()?;
            (Stream::Unix(r), Stream::Unix(s))
        } else if let Some(hostport) = addr.strip_prefix("tcp:") {
            let s = TcpStream::connect(hostport)?;
            s.set_nodelay(true)?;
            let r = s.try_clone()?;
            (Stream::Tcp(r), Stream::Tcp(s))
        } else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("address `{addr}` must start with unix: or tcp:"),
            ));
        };
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
        })
    }

    /// Sends one request without waiting for its response.
    pub fn send(&mut self, request: &Json) -> std::io::Result<()> {
        self.writer.write_all(request.compact().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Sends a raw line verbatim — for driving the server with inputs a
    /// [`Json`] value could never produce (malformed-request tests).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line. EOF and unparseable responses are
    /// I/O errors — a healthy server never produces either.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// Sends `request` and waits for the next response — lockstep use
    /// only (one request in flight on this connection).
    pub fn call(&mut self, request: &Json) -> std::io::Result<Json> {
        self.send(request)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_addresses_are_rejected_up_front() {
        match Client::connect("http://nope") {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
            Ok(_) => panic!("bad scheme accepted"),
        }
    }

    #[test]
    fn connecting_to_nothing_fails_cleanly() {
        assert!(Client::connect("unix:/nonexistent/deep/path.sock").is_err());
    }
}
