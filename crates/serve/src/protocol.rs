//! The newline-delimited JSON request/response protocol.
//!
//! One request per line, one response per line. A request names a command
//! and, for run commands, a problem specification in exactly the
//! vocabulary the CLI accepts (the `spec` object's keys are
//! [`smache::spec::SPEC_KEYS`]):
//!
//! ```json
//! {"id":"r1","cmd":"simulate","spec":{"grid":"11x11","rows":"circular"},"seed":7,"instances":2}
//! ```
//!
//! Responses carry the request's `id` back (or `null`), a `status` of
//! `ok` / `rejected` / `error`, and for successful runs the versioned
//! [`RunReport`](smache::system::RunReport) JSON under `report` plus a
//! `cached` flag. Rejections are *typed*: `reason` is `overloaded`
//! (admission control), `deadline` (expired waiting in the queue, or
//! the run itself overran — checked again at completion write-back),
//! `draining` (server shutting down), or `idle_timeout` (the server
//! closed a connection with no traffic and no job in flight for longer
//! than its `--conn-idle-ms`; sent with `id: null` just before the
//! close).
//!
//! ## Content addressing
//!
//! Every run request has a [canonical text](RunRequest::canonical) built
//! from the spec's canonical form plus the run parameters that affect the
//! result — and nothing else (`id`, `deadline_ms` and `replay` are
//! excluded; schedule replay is bit-exact, so the replay mode never
//! changes the report).
//! Equivalent spellings canonicalise identically, and the 128-bit
//! [`fingerprint`](RunRequest::cache_key) of that text is the result-cache
//! key. This is sound because runs are deterministic: a `(spec, seed,
//! fault plan, trace options)` tuple names exactly one report.

use std::sync::Arc;

use smache::arch::kernel::AverageKernel;
use smache::error::CoreError;
use smache::spec::{seeded_input, ProblemSpec, SPEC_KEYS};
use smache::system::{ControlSchedule, ReplayMode};
use smache::SmacheSystem;
use smache_mem::{ChaosProfile, FaultPlan};
use smache_sim::hash::fingerprint128;
use smache_sim::{Json, TelemetryConfig};

/// Protocol revision spoken by this build (bumped on breaking changes).
pub const PROTOCOL_VERSION: i64 = 1;

/// What kind of run a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// Plan only: run Algorithm 1 and return the buffer split. No
    /// simulation, cheap, still cacheable.
    Plan,
    /// Cycle-accurate simulation of the specified problem.
    Simulate,
    /// Simulation under a seeded fault-injection plan.
    Chaos,
    /// Simulation with telemetry attached; the report carries the
    /// counters and histograms.
    Trace,
}

impl RunKind {
    /// The wire name (also the `cmd` value that selects this kind).
    pub fn label(&self) -> &'static str {
        match self {
            RunKind::Plan => "plan",
            RunKind::Simulate => "simulate",
            RunKind::Chaos => "chaos",
            RunKind::Trace => "trace",
        }
    }
}

/// A fully parsed, validated run request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// What to run.
    pub kind: RunKind,
    /// The problem, parsed through the shared schema.
    pub spec: ProblemSpec,
    /// Input-generation seed (`seeded_input`).
    pub seed: u64,
    /// Work instances (timesteps) to simulate.
    pub instances: u64,
    /// Chaos profile name (canonical; `"off"` unless `kind` is `Chaos`).
    pub profile: String,
    /// Fault-plan seed (chaos runs only).
    pub chaos_seed: u64,
    /// How the server may use cached control schedules for this request,
    /// mirroring the CLI's `--replay` flag: `Auto` (default) replays when
    /// a sound schedule exists, `On` demands replay eligibility (a refusal
    /// is an error, not a silent fallback), `Off` always runs the full
    /// simulation. Replay is bit-exact, so this knob never changes the
    /// result — it is excluded from [`canonical`](Self::canonical).
    pub replay: ReplayMode,
    /// Per-request deadline in milliseconds, measured from admission.
    /// Checked twice: at dequeue (expired jobs are dropped before
    /// burning a worker) and again at completion write-back (a run that
    /// overran its promise is answered `rejected`/`deadline`, though its
    /// result still populates the cache for the next request).
    pub deadline_ms: Option<u64>,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<String>,
    /// The command.
    pub body: RequestBody,
}

/// The command a request carries.
#[derive(Debug, Clone)]
pub enum RequestBody {
    /// Execute (or serve from cache) a run.
    Run(Box<RunRequest>),
    /// Snapshot the server's metrics.
    Stats,
    /// Begin a graceful drain: finish queued work, then exit.
    Shutdown,
}

const TOP_KEYS: &[&str] = &[
    "cmd",
    "id",
    "spec",
    "seed",
    "instances",
    "profile",
    "chaos-seed",
    "replay",
    "deadline_ms",
];

impl Request {
    /// Parses one request line. Errors are human-readable strings that go
    /// straight into an `error` response.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let obj = doc.as_obj().ok_or("request must be a JSON object")?;
        for (key, _) in obj {
            if !TOP_KEYS.contains(&key.as_str()) {
                return Err(format!("unknown request key `{key}`"));
            }
        }
        let id = doc.get("id").and_then(Json::as_str).map(String::from);
        let cmd = doc
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing `cmd`")?;

        let kind = match cmd {
            "stats" => {
                return Ok(Request {
                    id,
                    body: RequestBody::Stats,
                })
            }
            "shutdown" => {
                return Ok(Request {
                    id,
                    body: RequestBody::Shutdown,
                })
            }
            "plan" => RunKind::Plan,
            "simulate" => RunKind::Simulate,
            "chaos" => RunKind::Chaos,
            "trace" => RunKind::Trace,
            other => {
                return Err(format!(
                    "unknown cmd `{other}` (plan|simulate|chaos|trace|stats|shutdown)"
                ))
            }
        };

        let spec = parse_spec(&doc)?;
        let seed = opt_u64(&doc, "seed")?.unwrap_or(0);
        let instances = opt_u64(&doc, "instances")?.unwrap_or(1);
        if instances == 0 {
            return Err("`instances` must be >= 1".to_string());
        }
        if spec.pipelined() {
            if kind == RunKind::Trace {
                return Err(
                    "`trace` does not support pipelined specs (`timesteps`/`channels`)".to_string(),
                );
            }
            if kind != RunKind::Plan && instances % spec.timesteps != 0 {
                return Err(format!(
                    "`instances` ({instances}) must be a multiple of `timesteps` ({}): \
                     each DRAM pass of the pipeline advances the grid that many updates",
                    spec.timesteps
                ));
            }
        }
        let deadline_ms = opt_u64(&doc, "deadline_ms")?;

        let replay = match doc.get("replay") {
            None => ReplayMode::Auto,
            Some(v) => {
                let name = v.as_str().ok_or("`replay` must be a string")?;
                ReplayMode::from_label(name)
                    .ok_or_else(|| format!("unknown replay mode `{name}` (auto|on|off)"))?
            }
        };

        let (profile, chaos_seed) = if kind == RunKind::Chaos {
            let name = doc.get("profile").and_then(Json::as_str).unwrap_or("heavy");
            if ChaosProfile::from_name(name).is_none() {
                return Err(format!(
                    "unknown chaos profile `{name}` (off|jitter|storms|drain|heavy|flip:<k>)"
                ));
            }
            (
                name.to_string(),
                opt_u64(&doc, "chaos-seed")?.unwrap_or(seed),
            )
        } else {
            if doc.get("profile").is_some() || doc.get("chaos-seed").is_some() {
                return Err(format!(
                    "`profile`/`chaos-seed` only apply to cmd `chaos`, not `{cmd}`"
                ));
            }
            ("off".to_string(), 0)
        };

        Ok(Request {
            id,
            body: RequestBody::Run(Box::new(RunRequest {
                kind,
                spec,
                seed,
                instances,
                profile,
                chaos_seed,
                replay,
                deadline_ms,
            })),
        })
    }
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn parse_spec(doc: &Json) -> Result<ProblemSpec, String> {
    let mut map = std::collections::BTreeMap::new();
    if let Some(spec) = doc.get("spec") {
        let pairs = spec.as_obj().ok_or("`spec` must be an object")?;
        for (key, value) in pairs {
            if !SPEC_KEYS.contains(&key.as_str()) {
                return Err(format!("unknown spec key `{key}`"));
            }
            let text = value
                .as_str()
                .map(String::from)
                .or_else(|| value.as_i64().map(|i| i.to_string()))
                .ok_or_else(|| format!("spec key `{key}` must be a string"))?;
            map.insert(key.clone(), text);
        }
    }
    ProblemSpec::from_source(&map).map_err(|e| e.to_string())
}

impl RunRequest {
    /// The canonical request text: everything that determines the result,
    /// nothing that doesn't. Equivalent requests produce byte-identical
    /// canonical texts.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "v{PROTOCOL_VERSION};cmd={};spec={}",
            self.kind.label(),
            self.spec.canonical()
        );
        match self.kind {
            RunKind::Plan => {}
            RunKind::Simulate | RunKind::Trace => {
                s.push_str(&format!(";seed={};instances={}", self.seed, self.instances));
            }
            RunKind::Chaos => {
                s.push_str(&format!(
                    ";seed={};instances={};chaos={}:{}",
                    self.seed, self.instances, self.profile, self.chaos_seed
                ));
            }
        }
        s
    }

    /// The content-address of this request: the 128-bit fingerprint of
    /// [`canonical`](Self::canonical).
    pub fn cache_key(&self) -> (u64, u64) {
        fingerprint128(self.canonical().as_bytes())
    }

    /// Runs the request to completion on the calling thread and returns
    /// the result JSON (a versioned report, or a plan summary).
    pub fn execute(&self) -> Result<Json, String> {
        if self.kind == RunKind::Plan {
            let plan = self.spec.builder().plan().map_err(|e| e.to_string())?;
            return Ok(Json::obj(vec![
                ("spec", Json::str(self.spec.canonical())),
                ("capacity", Json::Int(plan.capacity as i64)),
                ("lookahead", Json::Int(plan.lookahead as i64)),
                ("lookback", Json::Int(plan.lookback as i64)),
                (
                    "taps",
                    Json::Arr(plan.taps.iter().map(|&t| Json::Int(t as i64)).collect()),
                ),
                (
                    "static_buffers",
                    Json::Int(plan.static_buffers.len() as i64),
                ),
                ("n_cases", Json::Int(plan.n_cases as i64)),
            ]));
        }

        let input = seeded_input(self.spec.grid.len(), self.seed);
        if self.spec.pipelined() {
            let mut pipe = self.build_pipeline()?;
            let report = pipe
                .run(&input, self.instances / self.spec.timesteps)
                .map_err(|e| e.to_string())?;
            return Ok(report.to_json());
        }
        let mut builder = self.spec.builder();
        if self.kind == RunKind::Chaos {
            builder = builder.fault_plan(self.fault_plan()?);
        }
        if self.kind == RunKind::Trace {
            builder = builder.telemetry(TelemetryConfig::default());
        }
        let mut system: SmacheSystem = builder.build().map_err(|e| e.to_string())?;
        let report = system
            .run(&input, self.instances)
            .map_err(|e| e.to_string())?;
        Ok(report.to_json())
    }

    /// The request's fault plan (inactive unless `kind` is `Chaos`).
    fn fault_plan(&self) -> Result<FaultPlan, String> {
        if self.kind != RunKind::Chaos {
            return Ok(FaultPlan::default());
        }
        let profile = ChaosProfile::from_name(&self.profile)
            .ok_or_else(|| format!("unknown chaos profile `{}`", self.profile))?;
        Ok(FaultPlan::new(self.chaos_seed, profile))
    }

    /// Builds the temporal pipeline a pipelined spec asks for (parse-time
    /// validation guarantees `instances % timesteps == 0` by the time this
    /// runs).
    fn build_pipeline(&self) -> Result<smache::TemporalPipeline, String> {
        let plan = self.spec.builder().plan().map_err(|e| e.to_string())?;
        let config = smache::PipelineConfig {
            depth: self.spec.timesteps as usize,
            channels: self.spec.channels,
            system: smache::system::SystemConfig {
                fault_plan: self.fault_plan()?,
                ..Default::default()
            },
            ..Default::default()
        };
        smache::TemporalPipeline::new(plan, Box::new(AverageKernel), config)
            .map_err(|e| e.to_string())
    }

    /// The canonical text of the control *schedule* this request would
    /// exercise: the spec plus the instance count, **no data seed** — that
    /// is what lets differing-seed requests for one spec share a schedule.
    /// `Some` for plain `simulate` runs and for `chaos` runs whose profile
    /// is latency-only (faults that stretch timing without corrupting
    /// data leave the control plane a pure function of the spec and the
    /// chaos seed, so the chaos suffix joins the key and the data seed
    /// still does not). Plan requests have no schedule; trace runs and
    /// corrupting chaos profiles are not replay-eligible.
    pub fn schedule_canonical(&self) -> Option<String> {
        let chaos_active = match self.kind {
            RunKind::Simulate => false,
            RunKind::Chaos => {
                let profile = ChaosProfile::from_name(&self.profile)?;
                if !profile.is_latency_only() {
                    return None;
                }
                FaultPlan::new(self.chaos_seed, profile).is_active()
            }
            _ => return None,
        };
        let mut text = format!(
            "sched-v{PROTOCOL_VERSION};spec={};instances={}",
            self.spec.canonical(),
            self.instances
        );
        if chaos_active {
            text.push_str(&format!(";chaos={}:{}", self.profile, self.chaos_seed));
        }
        Some(text)
    }

    /// The schedule-cache key: the 128-bit fingerprint of
    /// [`schedule_canonical`](Self::schedule_canonical).
    pub fn schedule_key(&self) -> Option<(u64, u64)> {
        self.schedule_canonical()
            .map(|t| fingerprint128(t.as_bytes()))
    }

    /// Like [`execute`](Self::execute), but additionally captures the
    /// run's [`ControlSchedule`] so later same-spec requests can replay it.
    /// Applies to every request with a
    /// [`schedule_canonical`](Self::schedule_canonical) — plain `simulate`
    /// runs and latency-only `chaos` runs. A typed capture refusal falls
    /// back to the plain run internally and returns `None` for the
    /// schedule (unless the request forces `replay: on`, which surfaces
    /// the refusal as an error); only genuine run failures error.
    pub fn execute_capture(&self) -> Result<(Json, Option<Arc<ControlSchedule>>), String> {
        if self.schedule_canonical().is_none() {
            return self.execute().map(|r| (r, None));
        }
        let input = seeded_input(self.spec.grid.len(), self.seed);
        if self.spec.pipelined() {
            let mut pipe = self.build_pipeline()?;
            return match pipe.run_captured(&input, self.instances / self.spec.timesteps) {
                Ok((report, schedule)) => Ok((report.to_json(), Some(schedule))),
                Err(CoreError::ReplayRefused(_)) if self.replay != ReplayMode::On => {
                    self.execute().map(|r| (r, None))
                }
                Err(e) => Err(e.to_string()),
            };
        }
        let mut builder = self.spec.builder();
        if self.kind == RunKind::Chaos {
            builder = builder.fault_plan(self.fault_plan()?);
        }
        let mut system: SmacheSystem = builder.build().map_err(|e| e.to_string())?;
        match system.run_captured(&input, self.instances) {
            Ok((report, schedule)) => Ok((report.to_json(), Some(schedule))),
            Err(CoreError::ReplayRefused(_)) if self.replay != ReplayMode::On => {
                self.execute().map(|r| (r, None))
            }
            Err(e) => Err(e.to_string()),
        }
    }

    /// Replays a cached schedule over this request's seeded input instead
    /// of re-simulating. Bit-exact with [`execute`](Self::execute) for the
    /// spec the schedule was captured from; refusals (mismatched schedule)
    /// surface as errors for the caller to fall back on.
    pub fn execute_replay(&self, schedule: &ControlSchedule) -> Result<Json, String> {
        let input = seeded_input(self.spec.grid.len(), self.seed);
        let report = schedule
            .replay(&AverageKernel, &input)
            .map_err(|e| e.to_string())?;
        Ok(report.to_json())
    }
}

/// Builds a success response line. `report_text` is the already-compact
/// result JSON — it is embedded verbatim, so a cached report is handed
/// out byte-identically to the run that produced it.
pub fn ok_line(id: Option<&str>, cached: bool, report_text: &str) -> String {
    format!(
        "{{\"id\":{},\"status\":\"ok\",\"cached\":{cached},\"report\":{report_text}}}",
        id_json(id)
    )
}

/// Builds a typed rejection response line.
pub fn rejected_line(id: Option<&str>, reason: &str) -> String {
    Json::obj(vec![
        ("id", id_value(id)),
        ("status", Json::str("rejected")),
        ("reason", Json::str(reason)),
    ])
    .compact()
}

/// Builds an error response line.
pub fn error_line(id: Option<&str>, message: &str) -> String {
    Json::obj(vec![
        ("id", id_value(id)),
        ("status", Json::str("error")),
        ("error", Json::str(message)),
    ])
    .compact()
}

fn id_value(id: Option<&str>) -> Json {
    match id {
        Some(s) => Json::str(s),
        None => Json::Null,
    }
}

fn id_json(id: Option<&str>) -> String {
    id_value(id).compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> RunRequest {
        match Request::parse_line(line).expect("parses").body {
            RequestBody::Run(r) => *r,
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_full_simulate_request() {
        let r = run(
            r#"{"id":"r1","cmd":"simulate","spec":{"grid":"8x8","rows":"mirror"},"seed":7,"instances":2,"deadline_ms":500}"#,
        );
        assert_eq!(r.kind, RunKind::Simulate);
        assert_eq!(r.spec.grid.dims(), &[8, 8]);
        assert_eq!(r.seed, 7);
        assert_eq!(r.instances, 2);
        assert_eq!(r.deadline_ms, Some(500));
        assert_eq!(r.profile, "off");
    }

    #[test]
    fn defaults_match_the_cli() {
        let r = run(r#"{"cmd":"simulate"}"#);
        assert_eq!(r.spec.grid.dims(), &[11, 11]);
        assert_eq!(r.seed, 0);
        assert_eq!(r.instances, 1);
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn chaos_requests_carry_profile_and_seed() {
        let r = run(r#"{"cmd":"chaos","profile":"jitter","chaos-seed":3,"seed":9}"#);
        assert_eq!(r.kind, RunKind::Chaos);
        assert_eq!(r.profile, "jitter");
        assert_eq!(r.chaos_seed, 3);
        // chaos-seed defaults to seed.
        let r = run(r#"{"cmd":"chaos","seed":9}"#);
        assert_eq!(r.chaos_seed, 9);
        assert_eq!(r.profile, "heavy");
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            ("[1,2]", "object"),
            (r#"{"id":"x"}"#, "missing `cmd`"),
            (r#"{"cmd":"frobnicate"}"#, "unknown cmd"),
            (r#"{"cmd":"simulate","bogus":1}"#, "unknown request key"),
            (
                r#"{"cmd":"simulate","spec":{"gird":"8x8"}}"#,
                "unknown spec key",
            ),
            (r#"{"cmd":"simulate","spec":{"grid":"abc"}}"#, "grid"),
            (r#"{"cmd":"simulate","seed":-1}"#, "non-negative"),
            (r#"{"cmd":"simulate","instances":0}"#, ">= 1"),
            (r#"{"cmd":"chaos","profile":"nope"}"#, "chaos profile"),
            (r#"{"cmd":"simulate","profile":"jitter"}"#, "only apply"),
        ] {
            let err = Request::parse_line(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn stats_and_shutdown_parse() {
        assert!(matches!(
            Request::parse_line(r#"{"cmd":"stats"}"#).unwrap().body,
            RequestBody::Stats
        ));
        assert!(matches!(
            Request::parse_line(r#"{"cmd":"shutdown","id":"bye"}"#)
                .unwrap()
                .body,
            RequestBody::Shutdown
        ));
    }

    #[test]
    fn canonical_ignores_spelling_id_and_deadline() {
        let a =
            run(r#"{"id":"a","cmd":"simulate","spec":{"grid":"11X11","rows":"wrap"},"seed":7}"#);
        let b = run(
            r#"{"id":"b","cmd":"simulate","spec":{"grid":"11x11","rows":"circular"},"seed":7,"deadline_ms":9}"#,
        );
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn canonical_separates_what_changes_the_result() {
        let base = run(r#"{"cmd":"simulate","seed":7}"#);
        for other in [
            run(r#"{"cmd":"simulate","seed":8}"#),
            run(r#"{"cmd":"simulate","seed":7,"instances":2}"#),
            run(r#"{"cmd":"trace","seed":7}"#),
            run(r#"{"cmd":"chaos","seed":7,"profile":"jitter"}"#),
            run(r#"{"cmd":"simulate","seed":7,"spec":{"grid":"11x12"}}"#),
        ] {
            assert_ne!(base.cache_key(), other.cache_key(), "{}", other.canonical());
        }
        // Plan requests ignore seed entirely.
        let p1 = run(r#"{"cmd":"plan","seed":1}"#);
        let p2 = run(r#"{"cmd":"plan","seed":2}"#);
        assert_eq!(p1.cache_key(), p2.cache_key());
    }

    #[test]
    fn execute_plan_and_simulate() {
        let plan = run(r#"{"cmd":"plan"}"#).execute().expect("plan");
        assert_eq!(plan.get("capacity").and_then(Json::as_i64), Some(25));
        assert_eq!(plan.get("n_cases").and_then(Json::as_i64), Some(9));

        let report = run(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":1}"#)
            .execute()
            .expect("simulate");
        assert_eq!(report.get("schema_version").and_then(Json::as_i64), Some(1));
        assert_eq!(
            report
                .get("output")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(64)
        );
        // Trace runs attach telemetry; plain runs don't.
        assert_eq!(report.get("telemetry"), Some(&Json::Null));
        let traced = run(r#"{"cmd":"trace","spec":{"grid":"8x8"},"seed":1}"#)
            .execute()
            .expect("trace");
        assert!(traced.get("telemetry").unwrap().get("counters").is_some());
    }

    #[test]
    fn schedule_keys_are_seed_blind_and_simulate_only() {
        let a = run(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":1,"instances":2}"#);
        let b = run(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":99,"instances":2}"#);
        assert_ne!(a.cache_key(), b.cache_key(), "result keys see the seed");
        assert_eq!(
            a.schedule_key(),
            b.schedule_key(),
            "schedule keys do not see the seed"
        );
        let c = run(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":1,"instances":3}"#);
        assert_ne!(a.schedule_key(), c.schedule_key(), "instances are keyed");
        for other in [
            run(r#"{"cmd":"plan"}"#),
            run(r#"{"cmd":"chaos","spec":{"grid":"8x8"},"profile":"flip:3"}"#),
            run(r#"{"cmd":"trace","spec":{"grid":"8x8"}}"#),
        ] {
            assert_eq!(other.schedule_key(), None, "{:?}", other.kind);
        }
    }

    #[test]
    fn latency_only_chaos_schedule_keys_see_the_chaos_seed_not_the_data_seed() {
        let chaos = |line: &str| {
            run(line)
                .schedule_key()
                .expect("latency-only chaos has a key")
        };
        let a = chaos(
            r#"{"cmd":"chaos","spec":{"grid":"8x8"},"profile":"jitter","chaos-seed":3,"seed":1,"instances":2}"#,
        );
        let b = chaos(
            r#"{"cmd":"chaos","spec":{"grid":"8x8"},"profile":"jitter","chaos-seed":3,"seed":42,"instances":2}"#,
        );
        assert_eq!(a, b, "the data seed is not part of a chaos schedule key");

        let other_chaos_seed = chaos(
            r#"{"cmd":"chaos","spec":{"grid":"8x8"},"profile":"jitter","chaos-seed":4,"seed":1,"instances":2}"#,
        );
        assert_ne!(a, other_chaos_seed, "the chaos seed forks the key");
        let other_profile = chaos(
            r#"{"cmd":"chaos","spec":{"grid":"8x8"},"profile":"storms","chaos-seed":3,"seed":1,"instances":2}"#,
        );
        assert_ne!(a, other_profile, "the profile forks the key");

        let plain = run(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":1,"instances":2}"#)
            .schedule_key()
            .expect("simulate has a key");
        assert_ne!(a, plain, "an active chaos plan never shares a plain key");
        // An inactive plan (`profile: off`) is byte-identical to plain
        // simulation, so it legitimately shares the plain schedule key.
        let off = chaos(
            r#"{"cmd":"chaos","spec":{"grid":"8x8"},"profile":"off","seed":1,"instances":2}"#,
        );
        assert_eq!(off, plain, "an inactive plan shares the plain key");
    }

    #[test]
    fn capture_then_replay_matches_plain_execute() {
        let a = run(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":1,"instances":2}"#);
        let (doc_a, schedule) = a.execute_capture().expect("capture");
        let schedule = schedule.expect("simulate runs capture a schedule");
        assert_eq!(doc_a.get("output"), a.execute().expect("run").get("output"));

        // A different seed replayed through the cached schedule matches a
        // fresh full simulation, word for word.
        let b = run(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":42,"instances":2}"#);
        let replayed = b.execute_replay(&schedule).expect("replay");
        let full = b.execute().expect("run");
        assert_eq!(replayed.get("output"), full.get("output"));
        assert_eq!(replayed.get("stats"), full.get("stats"));
        assert_eq!(
            replayed.get("engine").and_then(Json::as_str),
            Some("replay")
        );
        assert_eq!(full.get("engine").and_then(Json::as_str), Some("full_sim"));

        // Non-eligible kinds fall back inside execute_capture.
        let t = run(r#"{"cmd":"trace","spec":{"grid":"8x8"},"seed":1}"#);
        let (doc_t, none) = t.execute_capture().expect("trace capture");
        assert!(none.is_none());
        assert!(doc_t.get("telemetry").unwrap().get("counters").is_some());
    }

    #[test]
    fn latency_only_chaos_captures_and_replays_across_data_seeds() {
        let chaos = |seed: u64| {
            run(&format!(
                r#"{{"cmd":"chaos","spec":{{"grid":"8x8"}},"profile":"jitter","chaos-seed":3,"seed":{seed},"instances":2}}"#,
            ))
        };
        let (doc_a, schedule) = chaos(1).execute_capture().expect("capture");
        let schedule = schedule.expect("latency-only chaos captures a schedule");
        assert_eq!(
            doc_a.get("output"),
            chaos(1).execute().expect("run").get("output")
        );

        // A different data seed replayed through the captured chaotic
        // schedule matches a fresh chaotic full simulation, word for word
        // — including the fault metrics.
        let replayed = chaos(42).execute_replay(&schedule).expect("replay");
        let full = chaos(42).execute().expect("run");
        assert_eq!(replayed.get("output"), full.get("output"));
        assert_eq!(replayed.get("stats"), full.get("stats"));
        assert_eq!(replayed.get("metrics"), full.get("metrics"));
        assert_eq!(
            replayed.get("engine").and_then(Json::as_str),
            Some("replay")
        );
    }

    #[test]
    fn pipelined_requests_validate_fork_keys_and_replay() {
        // Parse-time validation: instances must divide by timesteps, and
        // trace has no pipelined mode.
        let err = Request::parse_line(
            r#"{"cmd":"simulate","spec":{"grid":"8x8","timesteps":3},"instances":8}"#,
        )
        .unwrap_err();
        assert!(err.contains("multiple of `timesteps`"), "{err}");
        let err = Request::parse_line(r#"{"cmd":"trace","spec":{"grid":"8x8","timesteps":2}}"#)
            .unwrap_err();
        assert!(err.contains("does not support pipelined"), "{err}");

        // The pipeline knobs fork both the result and the schedule key.
        let plain = run(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":1,"instances":4}"#);
        let piped = run(
            r#"{"cmd":"simulate","spec":{"grid":"8x8","timesteps":2,"channels":2},"seed":1,"instances":4}"#,
        );
        assert_ne!(plain.cache_key(), piped.cache_key());
        assert_ne!(plain.schedule_key(), piped.schedule_key());

        // Execute, capture, and cross-seed replay — all bit-exact. The
        // pipelined output equals the single-step output for the same
        // total timestep count (the very point of temporal blocking).
        let full = piped.execute().expect("pipelined run");
        assert_eq!(
            full.get("output"),
            plain.execute().expect("run").get("output")
        );
        assert_eq!(
            full.get("metrics")
                .unwrap()
                .get("name")
                .and_then(Json::as_str),
            Some("Smache-pipe2x2")
        );
        let (doc, schedule) = piped.execute_capture().expect("capture");
        let schedule = schedule.expect("pipelined simulate captures");
        assert_eq!(doc.get("output"), full.get("output"));
        let other = run(
            r#"{"cmd":"simulate","spec":{"grid":"8x8","timesteps":2,"channels":2},"seed":9,"instances":4}"#,
        );
        let replayed = other.execute_replay(&schedule).expect("replay");
        let fresh = other.execute().expect("run");
        assert_eq!(replayed.get("output"), fresh.get("output"));
        assert_eq!(replayed.get("stats"), fresh.get("stats"));
    }

    #[test]
    fn replay_mode_parses_and_never_touches_the_cache_key() {
        let r = run(r#"{"cmd":"simulate","seed":7,"replay":"off"}"#);
        assert_eq!(r.replay, ReplayMode::Off);
        assert_eq!(
            run(r#"{"cmd":"simulate","seed":7}"#).replay,
            ReplayMode::Auto
        );
        // Replay is bit-exact, so the mode is excluded from the canonical
        // text: all three spellings share one result-cache entry.
        let base = run(r#"{"cmd":"simulate","seed":7}"#);
        for mode in ["auto", "on", "off"] {
            let other = run(&format!(
                r#"{{"cmd":"simulate","seed":7,"replay":"{mode}"}}"#
            ));
            assert_eq!(base.cache_key(), other.cache_key(), "replay={mode}");
        }
        let err = Request::parse_line(r#"{"cmd":"simulate","replay":"maybe"}"#).unwrap_err();
        assert!(err.contains("auto|on|off"), "{err}");
        let err = Request::parse_line(r#"{"cmd":"simulate","replay":1}"#).unwrap_err();
        assert!(err.contains("string"), "{err}");
    }

    #[test]
    fn response_lines_are_valid_json() {
        let ok = ok_line(Some("r\"1"), true, r#"{"x":1}"#);
        let doc = Json::parse(&ok).expect("ok line parses");
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("r\"1"));
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("report").unwrap().get("x").and_then(Json::as_i64),
            Some(1)
        );

        let rej = Json::parse(&rejected_line(None, "overloaded")).expect("parses");
        assert_eq!(rej.get("id"), Some(&Json::Null));
        assert_eq!(rej.get("reason").and_then(Json::as_str), Some("overloaded"));

        let err = Json::parse(&error_line(Some("x"), "boom")).expect("parses");
        assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
    }
}
