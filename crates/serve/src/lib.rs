//! # smache-serve — a concurrent job server for Smache runs
//!
//! Long-running daemon behind `smache serve`: accepts newline-delimited
//! JSON requests (simulate / chaos / trace / plan — the same problem
//! vocabulary as the CLI, via the shared [`smache::spec`] schema) over a
//! Unix socket or TCP, executes them on a bounded worker pool, and
//! replies with versioned [`RunReport`](smache::system::RunReport) JSON.
//!
//! Four properties make it a *server* rather than a loop around the
//! library:
//!
//! * **An epoll reactor** ([`reactor`]) — one thread owns every socket:
//!   non-blocking accept, per-connection read/frame/write state
//!   machines over pooled buffers ([`bufpool`]), idle-timeout sweeps,
//!   and a wake-pipe back-channel from the workers. Thousands of open
//!   connections cost fds, not threads.
//! * **Admission control** ([`pool`], [`adaptive`]) — a two-class
//!   queue that rejects overload explicitly (`rejected`/`overloaded`),
//!   admits schedule-resident replays ahead of cold captures, enforces
//!   per-request deadlines at dequeue *and* completion, optionally
//!   drives the limit with an AIMD controller, and drains gracefully on
//!   shutdown: admitted work always completes and responds.
//! * **Content-addressed caching** ([`cache`]) — runs are deterministic,
//!   so results are cached under the 128-bit fingerprint of the
//!   [canonical request](protocol::RunRequest::canonical). Repeat
//!   requests are answered byte-identically without re-simulating, under
//!   an LRU byte budget.
//! * **Observability** ([`metrics`]) — request outcomes, cache hit rate,
//!   connection and queue gauges, adaptive-limit state, and latency
//!   histograms, snapshotted by the `stats` command in the same JSON
//!   shape as report telemetry.
//!
//! ```no_run
//! use smache_serve::{start, Client, Listen, ServeConfig};
//! use smache_sim::Json;
//!
//! let handle = start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let response = client
//!     .call(&Json::parse(r#"{"cmd":"simulate","spec":{"grid":"8x8"},"seed":1}"#).unwrap())
//!     .unwrap();
//! assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod bufpool;
pub mod cache;
pub mod client;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use adaptive::{AimdConfig, AimdController};
pub use bufpool::{BufPoolStats, BufferPool};
pub use cache::{CacheStats, ResultCache};
pub use client::Client;
pub use metrics::ServerMetrics;
pub use pool::{AdmissionQueue, BoundedQueue, JobClass, PushError};
pub use protocol::{Request, RequestBody, RunKind, RunRequest, PROTOCOL_VERSION};
pub use server::{start, Listen, ServeConfig, ServerHandle};
