//! Server-side metrics, reusing the simulator's telemetry primitives.
//!
//! The same [`CounterRegistry`] that attributes simulator stalls also
//! counts server events here: request outcomes, cache effectiveness,
//! queue depth, and a power-of-two service-latency histogram. A `stats`
//! request snapshots the registry into the same `counters`/`histograms`
//! JSON shape reports use, so one decoder reads both.

use smache_sim::telemetry::{CounterId, CounterRegistry, HistogramId};
use smache_sim::Json;
use std::sync::Mutex;

/// Thread-safe server metrics.
pub struct ServerMetrics {
    reg: Mutex<Registry>,
}

struct Registry {
    counters: CounterRegistry,
    requests: CounterId,
    ok: CounterId,
    cached: CounterId,
    rejected_overload: CounterId,
    rejected_deadline: CounterId,
    rejected_draining: CounterId,
    errors: CounterId,
    cache_hits: CounterId,
    cache_misses: CounterId,
    cache_evictions: CounterId,
    cache_bytes: CounterId,
    cache_entries: CounterId,
    schedule_hits: CounterId,
    schedule_misses: CounterId,
    schedule_bytes: CounterId,
    store_hits: CounterId,
    store_misses: CounterId,
    store_writes: CounterId,
    store_corrupt: CounterId,
    store_bytes: CounterId,
    store_entries: CounterId,
    queue_depth: CounterId,
    queue_depth_replay: CounterId,
    queue_depth_capture: CounterId,
    conn_opened: CounterId,
    conn_closed: CounterId,
    conn_open: CounterId,
    conn_idle_closed: CounterId,
    conn_max_rejected: CounterId,
    rejected_idle: CounterId,
    deadline_dequeue: CounterId,
    deadline_completion: CounterId,
    adaptive_limit: CounterId,
    adaptive_increases: CounterId,
    adaptive_decreases: CounterId,
    admission_replay: CounterId,
    admission_capture: CounterId,
    bufpool_pooled_bytes: CounterId,
    bufpool_reused: CounterId,
    bufpool_allocated: CounterId,
    latency_us: HistogramId,
}

/// The rejection reasons [`ServerMetrics::rejected`] recognises.
const REASONS: &[&str] = &["overloaded", "deadline", "draining", "idle_timeout"];

impl ServerMetrics {
    /// Creates a zeroed metrics registry.
    pub fn new() -> ServerMetrics {
        let mut counters = CounterRegistry::new();
        let requests = counters.counter("serve.requests");
        let ok = counters.counter("serve.ok");
        let cached = counters.counter("serve.ok_cached");
        let rejected_overload = counters.counter("serve.rejected.overloaded");
        let rejected_deadline = counters.counter("serve.rejected.deadline");
        let rejected_draining = counters.counter("serve.rejected.draining");
        let errors = counters.counter("serve.errors");
        let cache_hits = counters.counter("serve.cache.hits");
        let cache_misses = counters.counter("serve.cache.misses");
        let cache_evictions = counters.counter("serve.cache.evictions");
        let cache_bytes = counters.counter("serve.cache.bytes");
        let cache_entries = counters.counter("serve.cache.entries");
        let schedule_hits = counters.counter("serve.schedule_cache.hits");
        let schedule_misses = counters.counter("serve.schedule_cache.misses");
        let schedule_bytes = counters.counter("serve.schedule_cache.bytes");
        let store_hits = counters.counter("serve.store.hits");
        let store_misses = counters.counter("serve.store.misses");
        let store_writes = counters.counter("serve.store.writes");
        let store_corrupt = counters.counter("serve.store.corrupt");
        let store_bytes = counters.counter("serve.store.bytes");
        let store_entries = counters.counter("serve.store.entries");
        let queue_depth = counters.counter("serve.queue.depth");
        let queue_depth_replay = counters.counter("serve.queue.depth_replay");
        let queue_depth_capture = counters.counter("serve.queue.depth_capture");
        let conn_opened = counters.counter("serve.conn.opened");
        let conn_closed = counters.counter("serve.conn.closed");
        let conn_open = counters.counter("serve.conn.open");
        let conn_idle_closed = counters.counter("serve.conn.idle_closed");
        let conn_max_rejected = counters.counter("serve.conn.max_conns_rejected");
        let rejected_idle = counters.counter("serve.rejected.idle_timeout");
        let deadline_dequeue = counters.counter("serve.deadline.dequeue");
        let deadline_completion = counters.counter("serve.deadline.completion");
        let adaptive_limit = counters.counter("serve.adaptive.limit");
        let adaptive_increases = counters.counter("serve.adaptive.increases");
        let adaptive_decreases = counters.counter("serve.adaptive.decreases");
        let admission_replay = counters.counter("serve.admission.replay");
        let admission_capture = counters.counter("serve.admission.capture");
        let bufpool_pooled_bytes = counters.counter("serve.bufpool.pooled_bytes");
        let bufpool_reused = counters.counter("serve.bufpool.reused");
        let bufpool_allocated = counters.counter("serve.bufpool.allocated");
        let latency_us = counters.histogram("serve.latency_us");
        ServerMetrics {
            reg: Mutex::new(Registry {
                counters,
                requests,
                ok,
                cached,
                rejected_overload,
                rejected_deadline,
                rejected_draining,
                errors,
                cache_hits,
                cache_misses,
                cache_evictions,
                cache_bytes,
                cache_entries,
                schedule_hits,
                schedule_misses,
                schedule_bytes,
                store_hits,
                store_misses,
                store_writes,
                store_corrupt,
                store_bytes,
                store_entries,
                queue_depth,
                queue_depth_replay,
                queue_depth_capture,
                conn_opened,
                conn_closed,
                conn_open,
                conn_idle_closed,
                conn_max_rejected,
                rejected_idle,
                deadline_dequeue,
                deadline_completion,
                adaptive_limit,
                adaptive_increases,
                adaptive_decreases,
                admission_replay,
                admission_capture,
                bufpool_pooled_bytes,
                bufpool_reused,
                bufpool_allocated,
                latency_us,
            }),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        f(&mut self.reg.lock().expect("metrics poisoned"))
    }

    /// Counts an arriving request (any command).
    pub fn request(&self) -> &Self {
        self.with(|r| r.counters.inc(r.requests));
        self
    }

    /// Counts a successful run response; `cached` marks cache hits.
    pub fn ok(&self, cached: bool) {
        self.with(|r| {
            r.counters.inc(r.ok);
            if cached {
                r.counters.inc(r.cached);
            }
        });
    }

    /// Counts a typed rejection (`overloaded` / `deadline` / `draining` /
    /// `idle_timeout`).
    pub fn rejected(&self, reason: &str) {
        debug_assert!(REASONS.contains(&reason), "unknown reason {reason}");
        self.with(|r| {
            let id = match reason {
                "deadline" => r.rejected_deadline,
                "draining" => r.rejected_draining,
                "idle_timeout" => r.rejected_idle,
                _ => r.rejected_overload,
            };
            r.counters.inc(id);
        });
    }

    /// Counts an error response (parse failures, failed runs).
    pub fn error(&self) {
        self.with(|r| r.counters.inc(r.errors));
    }

    /// Records a cache lookup outcome.
    pub fn cache_lookup(&self, hit: bool) {
        self.with(|r| {
            r.counters
                .inc(if hit { r.cache_hits } else { r.cache_misses })
        });
    }

    /// Publishes the cache's current totals (evictions, bytes, entries).
    pub fn cache_state(&self, evictions: u64, bytes: u64, entries: u64) {
        self.with(|r| {
            r.counters.set(r.cache_evictions, evictions);
            r.counters.set(r.cache_bytes, bytes);
            r.counters.set(r.cache_entries, entries);
        });
    }

    /// Records a schedule-cache lookup outcome (second-level cache:
    /// consulted only after a result-cache miss on a `simulate` run).
    pub fn schedule_cache_lookup(&self, hit: bool) {
        self.with(|r| {
            r.counters.inc(if hit {
                r.schedule_hits
            } else {
                r.schedule_misses
            })
        });
    }

    /// Publishes the schedule cache's current byte footprint.
    pub fn schedule_cache_state(&self, bytes: u64) {
        self.with(|r| r.counters.set(r.schedule_bytes, bytes));
    }

    /// Records a persistent-store lookup outcome (third level: consulted
    /// only after both the result cache and the in-memory schedule cache
    /// miss).
    pub fn store_lookup(&self, hit: bool) {
        self.with(|r| {
            r.counters
                .inc(if hit { r.store_hits } else { r.store_misses })
        });
    }

    /// Counts one schedule written back to the persistent store.
    pub fn store_write(&self) {
        self.with(|r| r.counters.inc(r.store_writes));
    }

    /// Counts one damaged store entry discarded (and recaptured).
    pub fn store_corrupt(&self) {
        self.with(|r| r.counters.inc(r.store_corrupt));
    }

    /// Publishes the store's current disk footprint.
    pub fn store_state(&self, bytes: u64, entries: u64) {
        self.with(|r| {
            r.counters.set(r.store_bytes, bytes);
            r.counters.set(r.store_entries, entries);
        });
    }

    /// Publishes the queue depth gauges (total plus per-lane).
    pub fn queue_depth(&self, replay: u64, capture: u64) {
        self.with(|r| {
            r.counters.set(r.queue_depth, replay + capture);
            r.counters.set(r.queue_depth_replay, replay);
            r.counters.set(r.queue_depth_capture, capture);
        });
    }

    /// Counts one accepted connection and publishes the open gauge.
    pub fn conn_opened(&self, open_now: u64) {
        self.with(|r| {
            r.counters.inc(r.conn_opened);
            r.counters.set(r.conn_open, open_now);
        });
    }

    /// Counts one closed connection and publishes the open gauge.
    /// `idle` marks closes forced by the idle/read timeout.
    pub fn conn_closed(&self, open_now: u64, idle: bool) {
        self.with(|r| {
            r.counters.inc(r.conn_closed);
            r.counters.set(r.conn_open, open_now);
            if idle {
                r.counters.inc(r.conn_idle_closed);
            }
        });
    }

    /// Counts one connection turned away at accept because
    /// `--max-conns` was reached.
    pub fn conn_max_rejected(&self) {
        self.with(|r| r.counters.inc(r.conn_max_rejected));
    }

    /// Counts one deadline miss; `at_dequeue` distinguishes jobs that
    /// expired waiting in the queue from jobs that expired while
    /// running (detected at completion write-back).
    pub fn deadline_miss(&self, at_dequeue: bool) {
        self.with(|r| {
            r.counters.inc(if at_dequeue {
                r.deadline_dequeue
            } else {
                r.deadline_completion
            });
        });
    }

    /// Publishes the adaptive controller's limit gauge and step totals.
    pub fn adaptive_state(&self, limit: u64, increases: u64, decreases: u64) {
        self.with(|r| {
            r.counters.set(r.adaptive_limit, limit);
            r.counters.set(r.adaptive_increases, increases);
            r.counters.set(r.adaptive_decreases, decreases);
        });
    }

    /// Counts one admitted job by class (`replay` = schedule resident).
    pub fn admitted(&self, replay: bool) {
        self.with(|r| {
            r.counters.inc(if replay {
                r.admission_replay
            } else {
                r.admission_capture
            });
        });
    }

    /// Publishes the buffer pool's totals.
    pub fn bufpool_state(&self, pooled_bytes: u64, reused: u64, allocated: u64) {
        self.with(|r| {
            r.counters.set(r.bufpool_pooled_bytes, pooled_bytes);
            r.counters.set(r.bufpool_reused, reused);
            r.counters.set(r.bufpool_allocated, allocated);
        });
    }

    /// Records one served request's admission→response latency.
    pub fn observe_latency_us(&self, us: u64) {
        self.with(|r| r.counters.observe(r.latency_us, us));
    }

    /// The value of one counter, for tests and assertions.
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|r| r.counters.get(name).unwrap_or(0))
    }

    /// Snapshots every counter and histogram as the `stats` payload.
    pub fn to_json(&self) -> Json {
        let snap = self.with(|r| r.counters.snapshot());
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    snap.counters
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::Int(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    snap.histograms
                        .iter()
                        .map(|(name, buckets)| {
                            (
                                name.clone(),
                                Json::Obj(
                                    buckets
                                        .iter()
                                        .map(|(b, v)| (b.clone(), Json::Int(*v as i64)))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_outcome() {
        let m = ServerMetrics::new();
        m.request().ok(false);
        m.request().ok(true);
        m.request().rejected("overloaded");
        m.request().rejected("deadline");
        m.request().error();
        assert_eq!(m.counter("serve.requests"), 5);
        assert_eq!(m.counter("serve.ok"), 2);
        assert_eq!(m.counter("serve.ok_cached"), 1);
        assert_eq!(m.counter("serve.rejected.overloaded"), 1);
        assert_eq!(m.counter("serve.rejected.deadline"), 1);
        assert_eq!(m.counter("serve.errors"), 1);
    }

    #[test]
    fn gauges_set_rather_than_add() {
        let m = ServerMetrics::new();
        m.queue_depth(4, 3);
        m.queue_depth(1, 2);
        assert_eq!(m.counter("serve.queue.depth"), 3);
        assert_eq!(m.counter("serve.queue.depth_replay"), 1);
        assert_eq!(m.counter("serve.queue.depth_capture"), 2);
        m.cache_state(2, 4096, 9);
        assert_eq!(m.counter("serve.cache.bytes"), 4096);
        assert_eq!(m.counter("serve.cache.entries"), 9);
        m.schedule_cache_state(1024);
        m.schedule_cache_state(2048);
        assert_eq!(m.counter("serve.schedule_cache.bytes"), 2048);
    }

    #[test]
    fn schedule_cache_counters_accumulate() {
        let m = ServerMetrics::new();
        m.schedule_cache_lookup(false);
        m.schedule_cache_lookup(true);
        m.schedule_cache_lookup(true);
        assert_eq!(m.counter("serve.schedule_cache.hits"), 2);
        assert_eq!(m.counter("serve.schedule_cache.misses"), 1);
    }

    #[test]
    fn store_counters_accumulate_and_gauges_set() {
        let m = ServerMetrics::new();
        m.store_lookup(true);
        m.store_lookup(false);
        m.store_write();
        m.store_write();
        m.store_corrupt();
        assert_eq!(m.counter("serve.store.hits"), 1);
        assert_eq!(m.counter("serve.store.misses"), 1);
        assert_eq!(m.counter("serve.store.writes"), 2);
        assert_eq!(m.counter("serve.store.corrupt"), 1);
        m.store_state(8192, 3);
        m.store_state(4096, 2);
        assert_eq!(m.counter("serve.store.bytes"), 4096);
        assert_eq!(m.counter("serve.store.entries"), 2);
    }

    #[test]
    fn connection_lifecycle_counters_track_the_open_gauge() {
        let m = ServerMetrics::new();
        m.conn_opened(1);
        m.conn_opened(2);
        m.conn_closed(1, false);
        m.conn_closed(0, true);
        assert_eq!(m.counter("serve.conn.opened"), 2);
        assert_eq!(m.counter("serve.conn.closed"), 2);
        assert_eq!(m.counter("serve.conn.open"), 0);
        assert_eq!(m.counter("serve.conn.idle_closed"), 1);
        m.conn_max_rejected();
        assert_eq!(m.counter("serve.conn.max_conns_rejected"), 1);
        m.rejected("idle_timeout");
        assert_eq!(m.counter("serve.rejected.idle_timeout"), 1);
    }

    #[test]
    fn deadline_misses_split_by_detection_point() {
        let m = ServerMetrics::new();
        m.deadline_miss(true);
        m.deadline_miss(false);
        m.deadline_miss(false);
        assert_eq!(m.counter("serve.deadline.dequeue"), 1);
        assert_eq!(m.counter("serve.deadline.completion"), 2);
    }

    #[test]
    fn adaptive_and_admission_counters_publish() {
        let m = ServerMetrics::new();
        m.adaptive_state(12, 5, 2);
        assert_eq!(m.counter("serve.adaptive.limit"), 12);
        assert_eq!(m.counter("serve.adaptive.increases"), 5);
        assert_eq!(m.counter("serve.adaptive.decreases"), 2);
        m.admitted(true);
        m.admitted(true);
        m.admitted(false);
        assert_eq!(m.counter("serve.admission.replay"), 2);
        assert_eq!(m.counter("serve.admission.capture"), 1);
        m.bufpool_state(8192, 10, 4);
        assert_eq!(m.counter("serve.bufpool.pooled_bytes"), 8192);
        assert_eq!(m.counter("serve.bufpool.reused"), 10);
        assert_eq!(m.counter("serve.bufpool.allocated"), 4);
    }

    #[test]
    fn snapshot_serialises_counters_and_latency_histogram() {
        let m = ServerMetrics::new();
        m.request().ok(false);
        m.observe_latency_us(100);
        m.observe_latency_us(90_000);
        let doc = m.to_json();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("serve.ok"))
                .and_then(Json::as_i64),
            Some(1)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("serve.latency_us"))
            .and_then(Json::as_obj)
            .expect("latency histogram present");
        let total: i64 = hist.iter().filter_map(|(_, v)| v.as_i64()).sum();
        assert_eq!(total, 2);
    }
}
