//! Server-side metrics, reusing the simulator's telemetry primitives.
//!
//! The same [`CounterRegistry`] that attributes simulator stalls also
//! counts server events here: request outcomes, cache effectiveness,
//! queue depth, and a power-of-two service-latency histogram. A `stats`
//! request snapshots the registry into the same `counters`/`histograms`
//! JSON shape reports use, so one decoder reads both.

use smache_sim::telemetry::{CounterId, CounterRegistry, HistogramId};
use smache_sim::Json;
use std::sync::Mutex;

/// Thread-safe server metrics.
pub struct ServerMetrics {
    reg: Mutex<Registry>,
}

struct Registry {
    counters: CounterRegistry,
    requests: CounterId,
    ok: CounterId,
    cached: CounterId,
    rejected_overload: CounterId,
    rejected_deadline: CounterId,
    rejected_draining: CounterId,
    errors: CounterId,
    cache_hits: CounterId,
    cache_misses: CounterId,
    cache_evictions: CounterId,
    cache_bytes: CounterId,
    cache_entries: CounterId,
    schedule_hits: CounterId,
    schedule_misses: CounterId,
    schedule_bytes: CounterId,
    store_hits: CounterId,
    store_misses: CounterId,
    store_writes: CounterId,
    store_corrupt: CounterId,
    store_bytes: CounterId,
    store_entries: CounterId,
    queue_depth: CounterId,
    latency_us: HistogramId,
}

/// The rejection reasons [`ServerMetrics::rejected`] recognises.
const REASONS: &[&str] = &["overloaded", "deadline", "draining"];

impl ServerMetrics {
    /// Creates a zeroed metrics registry.
    pub fn new() -> ServerMetrics {
        let mut counters = CounterRegistry::new();
        let requests = counters.counter("serve.requests");
        let ok = counters.counter("serve.ok");
        let cached = counters.counter("serve.ok_cached");
        let rejected_overload = counters.counter("serve.rejected.overloaded");
        let rejected_deadline = counters.counter("serve.rejected.deadline");
        let rejected_draining = counters.counter("serve.rejected.draining");
        let errors = counters.counter("serve.errors");
        let cache_hits = counters.counter("serve.cache.hits");
        let cache_misses = counters.counter("serve.cache.misses");
        let cache_evictions = counters.counter("serve.cache.evictions");
        let cache_bytes = counters.counter("serve.cache.bytes");
        let cache_entries = counters.counter("serve.cache.entries");
        let schedule_hits = counters.counter("serve.schedule_cache.hits");
        let schedule_misses = counters.counter("serve.schedule_cache.misses");
        let schedule_bytes = counters.counter("serve.schedule_cache.bytes");
        let store_hits = counters.counter("serve.store.hits");
        let store_misses = counters.counter("serve.store.misses");
        let store_writes = counters.counter("serve.store.writes");
        let store_corrupt = counters.counter("serve.store.corrupt");
        let store_bytes = counters.counter("serve.store.bytes");
        let store_entries = counters.counter("serve.store.entries");
        let queue_depth = counters.counter("serve.queue.depth");
        let latency_us = counters.histogram("serve.latency_us");
        ServerMetrics {
            reg: Mutex::new(Registry {
                counters,
                requests,
                ok,
                cached,
                rejected_overload,
                rejected_deadline,
                rejected_draining,
                errors,
                cache_hits,
                cache_misses,
                cache_evictions,
                cache_bytes,
                cache_entries,
                schedule_hits,
                schedule_misses,
                schedule_bytes,
                store_hits,
                store_misses,
                store_writes,
                store_corrupt,
                store_bytes,
                store_entries,
                queue_depth,
                latency_us,
            }),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        f(&mut self.reg.lock().expect("metrics poisoned"))
    }

    /// Counts an arriving request (any command).
    pub fn request(&self) -> &Self {
        self.with(|r| r.counters.inc(r.requests));
        self
    }

    /// Counts a successful run response; `cached` marks cache hits.
    pub fn ok(&self, cached: bool) {
        self.with(|r| {
            r.counters.inc(r.ok);
            if cached {
                r.counters.inc(r.cached);
            }
        });
    }

    /// Counts a typed rejection (`overloaded` / `deadline` / `draining`).
    pub fn rejected(&self, reason: &str) {
        debug_assert!(REASONS.contains(&reason), "unknown reason {reason}");
        self.with(|r| {
            let id = match reason {
                "deadline" => r.rejected_deadline,
                "draining" => r.rejected_draining,
                _ => r.rejected_overload,
            };
            r.counters.inc(id);
        });
    }

    /// Counts an error response (parse failures, failed runs).
    pub fn error(&self) {
        self.with(|r| r.counters.inc(r.errors));
    }

    /// Records a cache lookup outcome.
    pub fn cache_lookup(&self, hit: bool) {
        self.with(|r| {
            r.counters
                .inc(if hit { r.cache_hits } else { r.cache_misses })
        });
    }

    /// Publishes the cache's current totals (evictions, bytes, entries).
    pub fn cache_state(&self, evictions: u64, bytes: u64, entries: u64) {
        self.with(|r| {
            r.counters.set(r.cache_evictions, evictions);
            r.counters.set(r.cache_bytes, bytes);
            r.counters.set(r.cache_entries, entries);
        });
    }

    /// Records a schedule-cache lookup outcome (second-level cache:
    /// consulted only after a result-cache miss on a `simulate` run).
    pub fn schedule_cache_lookup(&self, hit: bool) {
        self.with(|r| {
            r.counters.inc(if hit {
                r.schedule_hits
            } else {
                r.schedule_misses
            })
        });
    }

    /// Publishes the schedule cache's current byte footprint.
    pub fn schedule_cache_state(&self, bytes: u64) {
        self.with(|r| r.counters.set(r.schedule_bytes, bytes));
    }

    /// Records a persistent-store lookup outcome (third level: consulted
    /// only after both the result cache and the in-memory schedule cache
    /// miss).
    pub fn store_lookup(&self, hit: bool) {
        self.with(|r| {
            r.counters
                .inc(if hit { r.store_hits } else { r.store_misses })
        });
    }

    /// Counts one schedule written back to the persistent store.
    pub fn store_write(&self) {
        self.with(|r| r.counters.inc(r.store_writes));
    }

    /// Counts one damaged store entry discarded (and recaptured).
    pub fn store_corrupt(&self) {
        self.with(|r| r.counters.inc(r.store_corrupt));
    }

    /// Publishes the store's current disk footprint.
    pub fn store_state(&self, bytes: u64, entries: u64) {
        self.with(|r| {
            r.counters.set(r.store_bytes, bytes);
            r.counters.set(r.store_entries, entries);
        });
    }

    /// Publishes the queue depth gauge.
    pub fn queue_depth(&self, depth: u64) {
        self.with(|r| r.counters.set(r.queue_depth, depth));
    }

    /// Records one served request's admission→response latency.
    pub fn observe_latency_us(&self, us: u64) {
        self.with(|r| r.counters.observe(r.latency_us, us));
    }

    /// The value of one counter, for tests and assertions.
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|r| r.counters.get(name).unwrap_or(0))
    }

    /// Snapshots every counter and histogram as the `stats` payload.
    pub fn to_json(&self) -> Json {
        let snap = self.with(|r| r.counters.snapshot());
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    snap.counters
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::Int(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    snap.histograms
                        .iter()
                        .map(|(name, buckets)| {
                            (
                                name.clone(),
                                Json::Obj(
                                    buckets
                                        .iter()
                                        .map(|(b, v)| (b.clone(), Json::Int(*v as i64)))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_outcome() {
        let m = ServerMetrics::new();
        m.request().ok(false);
        m.request().ok(true);
        m.request().rejected("overloaded");
        m.request().rejected("deadline");
        m.request().error();
        assert_eq!(m.counter("serve.requests"), 5);
        assert_eq!(m.counter("serve.ok"), 2);
        assert_eq!(m.counter("serve.ok_cached"), 1);
        assert_eq!(m.counter("serve.rejected.overloaded"), 1);
        assert_eq!(m.counter("serve.rejected.deadline"), 1);
        assert_eq!(m.counter("serve.errors"), 1);
    }

    #[test]
    fn gauges_set_rather_than_add() {
        let m = ServerMetrics::new();
        m.queue_depth(7);
        m.queue_depth(3);
        assert_eq!(m.counter("serve.queue.depth"), 3);
        m.cache_state(2, 4096, 9);
        assert_eq!(m.counter("serve.cache.bytes"), 4096);
        assert_eq!(m.counter("serve.cache.entries"), 9);
        m.schedule_cache_state(1024);
        m.schedule_cache_state(2048);
        assert_eq!(m.counter("serve.schedule_cache.bytes"), 2048);
    }

    #[test]
    fn schedule_cache_counters_accumulate() {
        let m = ServerMetrics::new();
        m.schedule_cache_lookup(false);
        m.schedule_cache_lookup(true);
        m.schedule_cache_lookup(true);
        assert_eq!(m.counter("serve.schedule_cache.hits"), 2);
        assert_eq!(m.counter("serve.schedule_cache.misses"), 1);
    }

    #[test]
    fn store_counters_accumulate_and_gauges_set() {
        let m = ServerMetrics::new();
        m.store_lookup(true);
        m.store_lookup(false);
        m.store_write();
        m.store_write();
        m.store_corrupt();
        assert_eq!(m.counter("serve.store.hits"), 1);
        assert_eq!(m.counter("serve.store.misses"), 1);
        assert_eq!(m.counter("serve.store.writes"), 2);
        assert_eq!(m.counter("serve.store.corrupt"), 1);
        m.store_state(8192, 3);
        m.store_state(4096, 2);
        assert_eq!(m.counter("serve.store.bytes"), 4096);
        assert_eq!(m.counter("serve.store.entries"), 2);
    }

    #[test]
    fn snapshot_serialises_counters_and_latency_histogram() {
        let m = ServerMetrics::new();
        m.request().ok(false);
        m.observe_latency_us(100);
        m.observe_latency_us(90_000);
        let doc = m.to_json();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("serve.ok"))
                .and_then(Json::as_i64),
            Some(1)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("serve.latency_us"))
            .and_then(Json::as_obj)
            .expect("latency histogram present");
        let total: i64 = hist.iter().filter_map(|(_, v)| v.as_i64()).sum();
        assert_eq!(total, 2);
    }
}
